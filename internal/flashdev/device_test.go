package flashdev

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"ipa/internal/nand"
)

func testConfig() Config {
	return Config{
		Chips: 1,
		Chip: nand.Config{
			Geometry: nand.Geometry{
				Blocks:        8,
				PagesPerBlock: 16,
				PageSize:      2048,
				OOBSize:       128,
			},
			Cell:            nand.MLC,
			StrictOverwrite: true,
			Seed:            3,
		},
		Latency: DefaultLatencyModel(),
	}
}

func mustDevice(t *testing.T, cfg Config) *Device {
	t.Helper()
	d, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d
}

func pattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*7 + seed
	}
	return b
}

func TestGeometryAndDeltaSlots(t *testing.T) {
	d := mustDevice(t, testConfig())
	g := d.Geometry()
	if g.Blocks != 8 || g.PagesPerBlock != 16 || g.PageSize != 2048 {
		t.Fatalf("geometry %+v", g)
	}
	if g.DeltaSlots <= 0 {
		t.Fatalf("expected delta ECC slots, got %d", g.DeltaSlots)
	}
	want := (128 - oobSlotsOff) / DeltaSlotSize
	if g.DeltaSlots != want {
		t.Fatalf("DeltaSlots = %d, want %d", g.DeltaSlots, want)
	}
}

func TestProgramReadRoundTrip(t *testing.T) {
	d := mustDevice(t, testConfig())
	data := pattern(2048, 1)
	if err := d.ProgramPage(0, 0, data, len(data)); err != nil {
		t.Fatalf("ProgramPage: %v", err)
	}
	got := make([]byte, 2048)
	if err := d.ReadPage(0, 0, got); err != nil {
		t.Fatalf("ReadPage: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip mismatch")
	}
	s := d.Stats()
	if s.PagePrograms != 1 || s.PageReads != 1 {
		t.Fatalf("stats %+v", s)
	}
	if s.BytesToDevice != 2048 || s.BytesFromDevice != 2048 {
		t.Fatalf("byte accounting %+v", s)
	}
}

func TestProgramDeltaAppend(t *testing.T) {
	d := mustDevice(t, testConfig())
	cover := 1024
	data := pattern(2048, 2)
	for i := cover; i < 2048; i++ {
		data[i] = 0xFF // erased delta area
	}
	if err := d.ProgramPage(1, 3, data, cover); err != nil {
		t.Fatalf("ProgramPage: %v", err)
	}
	delta := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	slot, err := d.ProgramDelta(1, 3, cover, delta)
	if err != nil {
		t.Fatalf("ProgramDelta: %v", err)
	}
	if slot != 0 {
		t.Fatalf("first delta should use slot 0, got %d", slot)
	}
	// A second append lands in the next slot and at the next offset.
	slot2, err := d.ProgramDelta(1, 3, cover+len(delta), []byte{0x01, 0x02})
	if err != nil {
		t.Fatalf("second ProgramDelta: %v", err)
	}
	if slot2 != 1 {
		t.Fatalf("second delta should use slot 1, got %d", slot2)
	}
	got := make([]byte, 2048)
	if err := d.ReadPage(1, 3, got); err != nil {
		t.Fatalf("ReadPage after appends: %v", err)
	}
	if !bytes.Equal(got[:cover], data[:cover]) {
		t.Fatalf("original content disturbed")
	}
	if !bytes.Equal(got[cover:cover+4], delta) || got[cover+4] != 0x01 || got[cover+5] != 0x02 {
		t.Fatalf("appended deltas wrong: % x", got[cover:cover+8])
	}
	free, err := d.FreeDeltaSlots(1, 3)
	if err != nil {
		t.Fatalf("FreeDeltaSlots: %v", err)
	}
	if free != d.Geometry().DeltaSlots-2 {
		t.Fatalf("free slots = %d", free)
	}
}

func TestProgramDeltaOverwriteViolation(t *testing.T) {
	d := mustDevice(t, testConfig())
	data := pattern(2048, 3)
	if err := d.ProgramPage(0, 1, data, 2048); err != nil {
		t.Fatalf("ProgramPage: %v", err)
	}
	// Appending over already programmed (non-erased) bytes that would need
	// 0->1 transitions must fail.
	_, err := d.ProgramDelta(0, 1, 0, []byte{0xFF})
	if !errors.Is(err, nand.ErrOverwriteViolation) {
		t.Fatalf("expected overwrite violation, got %v", err)
	}
}

func TestNoDeltaSlotLeft(t *testing.T) {
	cfg := testConfig()
	cfg.Chip.Geometry.OOBSize = oobSlotsOff + DeltaSlotSize // exactly one slot
	cfg.Chip.MaxProgramsPerPage = 10
	d := mustDevice(t, cfg)
	data := make([]byte, 2048)
	for i := range data {
		data[i] = 0xFF
	}
	data[0] = 0x01
	if err := d.ProgramPage(0, 0, data, 1024); err != nil {
		t.Fatalf("ProgramPage: %v", err)
	}
	if _, err := d.ProgramDelta(0, 0, 1500, []byte{0xAA}); err != nil {
		t.Fatalf("first delta: %v", err)
	}
	if _, err := d.ProgramDelta(0, 0, 1600, []byte{0xBB}); !errors.Is(err, ErrNoDeltaSlot) {
		t.Fatalf("expected ErrNoDeltaSlot, got %v", err)
	}
}

func TestEraseBlockAndReuse(t *testing.T) {
	d := mustDevice(t, testConfig())
	if err := d.ProgramPage(2, 0, pattern(2048, 4), 2048); err != nil {
		t.Fatalf("ProgramPage: %v", err)
	}
	if err := d.EraseBlock(2); err != nil {
		t.Fatalf("EraseBlock: %v", err)
	}
	programmed, err := d.PageProgrammed(2, 0)
	if err != nil || programmed {
		t.Fatalf("page should be erased: %v %v", programmed, err)
	}
	if err := d.ProgramPage(2, 0, pattern(2048, 5), 2048); err != nil {
		t.Fatalf("re-program after erase: %v", err)
	}
	if d.TotalErases() != 1 {
		t.Fatalf("TotalErases = %d", d.TotalErases())
	}
	if n, err := d.BlockEraseCount(2); err != nil || n != 1 {
		t.Fatalf("BlockEraseCount = %d, %v", n, err)
	}
}

func TestCopyPagePreservesContentAndECC(t *testing.T) {
	d := mustDevice(t, testConfig())
	cover := 1500
	data := pattern(2048, 6)
	for i := cover; i < 2048; i++ {
		data[i] = 0xFF
	}
	if err := d.ProgramPage(0, 0, data, cover); err != nil {
		t.Fatalf("ProgramPage: %v", err)
	}
	if _, err := d.ProgramDelta(0, 0, cover, []byte{1, 2, 3}); err != nil {
		t.Fatalf("ProgramDelta: %v", err)
	}
	if err := d.CopyPage(0, 0, 4, 7); err != nil {
		t.Fatalf("CopyPage: %v", err)
	}
	src := make([]byte, 2048)
	dst := make([]byte, 2048)
	if err := d.ReadPage(0, 0, src); err != nil {
		t.Fatalf("ReadPage src: %v", err)
	}
	if err := d.ReadPage(4, 7, dst); err != nil {
		t.Fatalf("ReadPage dst (ECC must still verify): %v", err)
	}
	if !bytes.Equal(src, dst) {
		t.Fatalf("copy mismatch")
	}
	// Further appends at the destination must still work.
	if _, err := d.ProgramDelta(4, 7, cover+3, []byte{9}); err != nil {
		t.Fatalf("append after copy: %v", err)
	}
	if err := d.ReadPage(4, 7, dst); err != nil {
		t.Fatalf("ReadPage after post-copy append: %v", err)
	}
}

func TestVirtualClockAdvances(t *testing.T) {
	d := mustDevice(t, testConfig())
	if d.Now() != 0 {
		t.Fatalf("clock should start at zero")
	}
	if err := d.ProgramPage(0, 0, pattern(2048, 7), 2048); err != nil {
		t.Fatalf("ProgramPage: %v", err)
	}
	afterWrite := d.Now()
	if afterWrite <= 0 {
		t.Fatalf("clock did not advance on program")
	}
	buf := make([]byte, 2048)
	if err := d.ReadPage(0, 0, buf); err != nil {
		t.Fatalf("ReadPage: %v", err)
	}
	if d.Now() <= afterWrite {
		t.Fatalf("clock did not advance on read")
	}
	d.AdvanceClock(time.Millisecond)
	if d.Now() < afterWrite+time.Millisecond {
		t.Fatalf("AdvanceClock had no effect")
	}
}

func TestLatencyLSBvsMSB(t *testing.T) {
	d := mustDevice(t, testConfig())
	data := pattern(2048, 8)
	// Page 0 is an MSB page, page 1 an LSB page on MLC.
	if err := d.ProgramPage(0, 0, data, 2048); err != nil {
		t.Fatalf("program MSB: %v", err)
	}
	msbTime := d.Now()
	if err := d.ProgramPage(0, 1, data, 2048); err != nil {
		t.Fatalf("program LSB: %v", err)
	}
	lsbTime := d.Now() - msbTime
	if lsbTime >= msbTime {
		t.Fatalf("LSB program (%v) should be faster than MSB program (%v)", lsbTime, msbTime)
	}
}

func TestCorruptionDetectedOnRead(t *testing.T) {
	cfg := testConfig()
	cfg.Chip.StrictOverwrite = false // allow the chip-level tampering below
	cfg.Chip.InterferenceProb = 1.0
	d := mustDevice(t, cfg)
	// Program both pages of a wordline pair, then re-program the MSB page
	// repeatedly; with interference probability 1 the paired LSB page
	// accumulates bit errors until the ECC gives up.
	lsb := pattern(2048, 9)
	if err := d.ProgramPage(0, 1, lsb, 2048); err != nil {
		t.Fatalf("program lsb: %v", err)
	}
	msb := make([]byte, 2048)
	for i := range msb {
		msb[i] = 0xFF
	}
	msb[0] = 0x00
	if err := d.ProgramPage(0, 0, msb, 2048); err != nil {
		t.Fatalf("program msb: %v", err)
	}
	buf := make([]byte, 2048)
	sawError := false
	corrected := false
	for i := 0; i < 6; i++ {
		if _, err := d.ProgramDelta(0, 0, 100+i, []byte{0x00}); err != nil {
			break
		}
		err := d.ReadPage(0, 1, buf)
		if err != nil {
			if !errors.Is(err, ErrCorrupted) {
				t.Fatalf("unexpected error: %v", err)
			}
			sawError = true
			break
		}
		if d.Stats().CorrectedBits > 0 {
			corrected = true
		}
	}
	if !sawError && !corrected {
		t.Fatalf("expected the ECC to correct or report interference damage")
	}
}

func TestMultiChipAddressing(t *testing.T) {
	cfg := testConfig()
	cfg.Chips = 2
	d := mustDevice(t, cfg)
	g := d.Geometry()
	if g.Blocks != 16 {
		t.Fatalf("expected 16 blocks across 2 chips, got %d", g.Blocks)
	}
	// Last block of the second chip.
	if err := d.ProgramPage(15, 0, pattern(2048, 10), 2048); err != nil {
		t.Fatalf("ProgramPage on chip 2: %v", err)
	}
	got := make([]byte, 2048)
	if err := d.ReadPage(15, 0, got); err != nil {
		t.Fatalf("ReadPage on chip 2: %v", err)
	}
	if err := d.EraseBlock(16); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("expected out of range, got %v", err)
	}
}

func TestResetStatsKeepsClockAndWear(t *testing.T) {
	d := mustDevice(t, testConfig())
	if err := d.ProgramPage(0, 0, pattern(2048, 11), 2048); err != nil {
		t.Fatalf("ProgramPage: %v", err)
	}
	if err := d.EraseBlock(0); err != nil {
		t.Fatalf("EraseBlock: %v", err)
	}
	before := d.Now()
	d.ResetStats()
	if d.Stats().PagePrograms != 0 || d.Stats().BlockErases != 0 {
		t.Fatalf("stats not reset")
	}
	if d.Now() != before {
		t.Fatalf("clock must survive ResetStats")
	}
	if d.TotalErases() != 1 {
		t.Fatalf("wear must survive ResetStats")
	}
}
