// Package flashdev assembles one or more simulated NAND chips into a Flash
// device with a command interface, an out-of-band (OOB) layout for ECC, and
// a virtual clock.
//
// The device offers exactly the commands the paper's storage architecture
// needs: whole-page read and program, block erase, and the partial-program
// primitive used by write_delta to append a delta record to an already
// programmed Flash page. All commands advance a deterministic virtual clock
// according to a configurable latency model, so layers above can derive
// throughput figures without depending on wall-clock time.
//
// The device itself holds no lock: every chip synchronises independently
// (inside nand.Chip), every chip accumulates its own virtual time, and the
// device-level statistics are atomic counters. Commands addressed to
// different chips therefore proceed fully in parallel, and the device clock
// returned by Now is the merge (maximum) of the per-chip clocks plus a
// shared atomic adjustment fed by AdvanceClock — virtual time models a
// device whose chips operate concurrently.
//
// Virtual-time model: each chip's accumulator is its busy time, and Now is
// the makespan assuming commands pipeline onto their chips back-to-back —
// as if every command were queued to its chip the moment the previous
// command on that chip finished, regardless of when the host actually
// issued it. This keeps the clock deterministic (independent of goroutine
// scheduling) and exact for saturated chips; for a host that issues
// strictly sequential commands across chips it is the idealised lower
// bound a command queue could achieve, not the synchronous-host latency.
package flashdev

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"ipa/internal/ecc"
	"ipa/internal/nand"
)

// OOB layout constants. The OOB area of every page holds, in order, the
// cover length of the initial ECC, the initial ECC itself, the FTL mapping
// tag (logical address and write sequence number, with their own ECC — what
// lets crash recovery rebuild the logical-to-physical mapping from the
// Flash image alone), and a number of delta-record ECC slots (Figure 3 of
// the paper).
const (
	// The initial ECC covers the leading eccCover bytes of the page plus,
	// optionally, the trailing eccTail bytes (the page footer behind the
	// delta-record area): both lengths are stored in front of the code so
	// reads and recovery scans know the protected regions. Without the
	// tail cover a torn whole-page program could persist a valid body but
	// a corrupt footer and recovery could not tell.
	oobCoverLenSize = 2
	oobTailLenSize  = 2
	oobInitialOff   = oobCoverLenSize + oobTailLenSize
	// oobTagOff is the offset of the FTL mapping tag: lba (4), seq (8) and
	// a dedicated ECC so a torn program cannot forge a valid tag.
	oobTagOff       = oobInitialOff + ecc.CodeSize
	tagBody         = 4 + 8
	TagSize         = tagBody + ecc.CodeSize
	oobSlotsOff     = oobTagOff + TagSize
	deltaSlotHeader = 4 // offset (2) + length (2)
	// DeltaSlotSize is the OOB space consumed by one delta-record ECC slot.
	DeltaSlotSize = deltaSlotHeader + ecc.CodeSize
)

// blankLen is the stored length of a region whose OOB header was never
// programmed (erased cells read 0xFFFF).
const blankLen = 0xFFFF

// Errors returned by the device.
var (
	// ErrNoDeltaSlot is returned by ProgramDelta when all OOB delta ECC
	// slots of the page are already in use.
	ErrNoDeltaSlot = errors.New("flashdev: no free delta ECC slot in OOB")
	// ErrCorrupted is returned when ECC verification fails beyond repair.
	ErrCorrupted = errors.New("flashdev: uncorrectable data corruption")
	// ErrOutOfRange mirrors nand.ErrOutOfRange at device granularity.
	ErrOutOfRange = errors.New("flashdev: address out of range")
)

// Config configures a Flash device.
type Config struct {
	// Chips is the number of identical NAND chips; their blocks are
	// concatenated into one linear block address space.
	Chips int
	// Chip is the per-chip configuration.
	Chip nand.Config
	// Latency is the timing model driving the virtual clock.
	Latency LatencyModel
	// DisableECC turns off ECC generation and verification (useful for
	// micro-benchmarks isolating the ECC cost).
	DisableECC bool
}

// DefaultConfig returns a single-chip device with default geometry and
// timing.
func DefaultConfig() Config {
	return Config{
		Chips:   1,
		Chip:    nand.DefaultConfig(),
		Latency: DefaultLatencyModel(),
	}
}

// Stats aggregates device-level counters.
type Stats struct {
	PageReads       uint64
	PagePrograms    uint64
	DeltaPrograms   uint64
	BlockErases     uint64
	BytesToDevice   uint64 // bytes transferred host -> device
	BytesFromDevice uint64 // bytes transferred device -> host
	CorrectedBits   uint64
	Uncorrectable   uint64
}

// chipClock is one chip's virtual-time accumulator, padded onto its own
// cache line so chips advancing their clocks concurrently do not false-share.
type chipClock struct {
	ns atomic.Int64
	_  [7]int64
}

// OpHook observes every chip operation as it starts: the chip index and
// the operation class (nand.OpRead, nand.OpProgram, nand.OpDeltaProgram or
// nand.OpErase). The chaos harness uses it to inject transient device
// latency — a hook that sleeps stalls exactly the callers touching that
// chip, and one that calls AdvanceClock charges virtual time. Hooks run on
// the caller's goroutine before the operation executes and must be safe
// for concurrent use.
type OpHook func(chip int, op nand.FaultOp)

// Device is a simulated Flash storage device. All methods are safe for
// concurrent use; operations on different chips never contend.
type Device struct {
	cfg   Config
	chips []*nand.Chip

	// Per-chip virtual clocks plus the shared adjustment charged by
	// AdvanceClock. Now() merges them.
	clocks []chipClock
	adjust atomic.Int64

	// opHook, when set, observes every chip operation (see OpHook).
	opHook atomic.Pointer[OpHook]

	pageReads       atomic.Uint64
	pagePrograms    atomic.Uint64
	deltaPrograms   atomic.Uint64
	blockErases     atomic.Uint64
	bytesToDevice   atomic.Uint64
	bytesFromDevice atomic.Uint64
	correctedBits   atomic.Uint64
	uncorrectable   atomic.Uint64
}

// New creates a device with all blocks erased.
func New(cfg Config) (*Device, error) {
	if cfg.Chips <= 0 {
		cfg.Chips = 1
	}
	if cfg.Latency == (LatencyModel{}) {
		cfg.Latency = DefaultLatencyModel()
	}
	d := &Device{cfg: cfg, clocks: make([]chipClock, cfg.Chips)}
	for i := 0; i < cfg.Chips; i++ {
		chipCfg := cfg.Chip
		chipCfg.Seed = cfg.Chip.Seed + int64(i)
		chip, err := nand.NewChip(chipCfg)
		if err != nil {
			return nil, fmt.Errorf("flashdev: chip %d: %w", i, err)
		}
		d.chips = append(d.chips, chip)
	}
	return d, nil
}

// Geometry describes the device-level geometry.
type Geometry struct {
	Blocks        int // total blocks across all chips
	PagesPerBlock int
	PageSize      int
	OOBSize       int
	DeltaSlots    int // delta ECC slots available per page
}

// Geometry returns the device geometry.
func (d *Device) Geometry() Geometry {
	g := d.cfg.Chip.Geometry
	slots := 0
	if g.OOBSize > oobSlotsOff {
		slots = (g.OOBSize - oobSlotsOff) / DeltaSlotSize
	}
	return Geometry{
		Blocks:        g.Blocks * d.cfg.Chips,
		PagesPerBlock: g.PagesPerBlock,
		PageSize:      g.PageSize,
		OOBSize:       g.OOBSize,
		DeltaSlots:    slots,
	}
}

// CellType returns the cell technology of the underlying chips.
func (d *Device) CellType() nand.CellType { return d.cfg.Chip.Cell }

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Chips returns the number of NAND chips of the device.
func (d *Device) Chips() int { return len(d.chips) }

// BlocksPerChip returns the number of erase blocks on each chip.
func (d *Device) BlocksPerChip() int { return d.cfg.Chip.Geometry.Blocks }

// ChipOf returns the index of the chip holding the device block, or -1 for
// out-of-range blocks.
func (d *Device) ChipOf(block int) int {
	chip, _, _, err := d.locate(block)
	if err != nil {
		return -1
	}
	return chip
}

// Now returns the current virtual time of the device: the furthest-advanced
// per-chip clock plus the shared adjustment. Chips operate in parallel, so
// elapsed virtual time is bounded by the busiest chip, not by the sum of
// all chip activity.
func (d *Device) Now() time.Duration {
	var max int64
	for i := range d.clocks {
		if ns := d.clocks[i].ns.Load(); ns > max {
			max = ns
		}
	}
	return time.Duration(max + d.adjust.Load())
}

// ChipClocks returns the per-chip virtual-time accumulators (excluding the
// shared AdvanceClock adjustment). The spread across chips shows how evenly
// the load is striped.
func (d *Device) ChipClocks() []time.Duration {
	out := make([]time.Duration, len(d.clocks))
	for i := range d.clocks {
		out[i] = time.Duration(d.clocks[i].ns.Load())
	}
	return out
}

// AdvanceClock adds extra virtual time, e.g. CPU cost charged by layers
// above the device. The adjustment is shared across all chips.
func (d *Device) AdvanceClock(dt time.Duration) {
	d.adjust.Add(int64(dt))
}

// advance charges dt of virtual time to one chip's clock.
func (d *Device) advance(chip int, dt time.Duration) {
	d.clocks[chip].ns.Add(int64(dt))
}

// SetOpHook installs (or, with nil, removes) the device operation hook.
// Safe to call while operations are in flight; in-flight operations may
// still observe the previous hook.
func (d *Device) SetOpHook(h OpHook) {
	if h == nil {
		d.opHook.Store(nil)
		return
	}
	d.opHook.Store(&h)
}

// hook invokes the installed operation hook, if any.
func (d *Device) hook(chip int, op nand.FaultOp) {
	if h := d.opHook.Load(); h != nil {
		(*h)(chip, op)
	}
}

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats {
	return Stats{
		PageReads:       d.pageReads.Load(),
		PagePrograms:    d.pagePrograms.Load(),
		DeltaPrograms:   d.deltaPrograms.Load(),
		BlockErases:     d.blockErases.Load(),
		BytesToDevice:   d.bytesToDevice.Load(),
		BytesFromDevice: d.bytesFromDevice.Load(),
		CorrectedBits:   d.correctedBits.Load(),
		Uncorrectable:   d.uncorrectable.Load(),
	}
}

// ResetStats zeroes the device counters. The virtual clock and the per-
// block wear state are preserved.
func (d *Device) ResetStats() {
	d.pageReads.Store(0)
	d.pagePrograms.Store(0)
	d.deltaPrograms.Store(0)
	d.blockErases.Store(0)
	d.bytesToDevice.Store(0)
	d.bytesFromDevice.Store(0)
	d.correctedBits.Store(0)
	d.uncorrectable.Store(0)
}

// ChipStats returns the summed raw chip counters.
func (d *Device) ChipStats() nand.Stats {
	var s nand.Stats
	for _, c := range d.chips {
		cs := c.Stats()
		s.PageReads += cs.PageReads
		s.PagePrograms += cs.PagePrograms
		s.PartialPrograms += cs.PartialPrograms
		s.BlockErases += cs.BlockErases
		s.InterferenceBits += cs.InterferenceBits
		s.OverwriteDenied += cs.OverwriteDenied
	}
	return s
}

// PerChipStats returns the raw operation counters of every chip, indexed by
// chip. Chip counters accumulate over the device lifetime (they are not
// affected by ResetStats).
func (d *Device) PerChipStats() []nand.Stats {
	out := make([]nand.Stats, len(d.chips))
	for i, c := range d.chips {
		out[i] = c.Stats()
	}
	return out
}

// TotalErases returns the total number of block erases performed, a proxy
// for device wear.
func (d *Device) TotalErases() uint64 {
	var sum uint64
	for _, c := range d.chips {
		sum += c.TotalErases()
	}
	return sum
}

// MaxEraseCount returns the highest per-block erase count on the device.
func (d *Device) MaxEraseCount() int {
	max := 0
	for _, c := range d.chips {
		if m := c.MaxEraseCount(); m > max {
			max = m
		}
	}
	return max
}

// EnduranceCycles returns the per-block endurance of the underlying chips.
func (d *Device) EnduranceCycles() int {
	return d.chips[0].Config().EnduranceCycles
}

// BlockEraseCount returns the erase count of a device block.
func (d *Device) BlockEraseCount(block int) (int, error) {
	_, chip, b, err := d.locate(block)
	if err != nil {
		return 0, err
	}
	return chip.EraseCount(b)
}

// CopyPage migrates a programmed page to another (erased) location, as done
// by garbage collection (copy-back). Data and OOB are copied verbatim, so
// the initial ECC and every per-delta-record ECC slot remain valid at the
// destination and further appends can still use the remaining slots.
func (d *Device) CopyPage(srcBlock, srcPage, dstBlock, dstPage int) error {
	srcChipIdx, srcChip, sb, err := d.locate(srcBlock)
	if err != nil {
		return err
	}
	dstChipIdx, dstChip, db, err := d.locate(dstBlock)
	if err != nil {
		return err
	}
	d.hook(srcChipIdx, nand.OpRead)
	d.hook(dstChipIdx, nand.OpProgram)
	g := d.cfg.Chip.Geometry
	data := make([]byte, g.PageSize)
	oob := make([]byte, g.OOBSize)
	if err := srcChip.ReadPage(sb, srcPage, data, oob); err != nil {
		return err
	}
	if err := dstChip.Program(db, dstPage, data, oob); err != nil {
		return err
	}
	d.pageReads.Add(1)
	d.pagePrograms.Add(1)
	lsb := nand.IsLSBPage(d.cfg.Chip.Cell, dstPage)
	// Copy-back stays on the device: no host bus transfer is charged. The
	// read is charged to the source chip, the program to the destination.
	d.advance(srcChipIdx, d.cfg.Latency.PageRead)
	d.advance(dstChipIdx, d.cfg.Latency.programTime(d.cfg.Chip.Cell == nand.SLC, lsb))
	return nil
}

// locate translates a device block index into (chip index, chip, chip-local
// block).
func (d *Device) locate(block int) (int, *nand.Chip, int, error) {
	per := d.cfg.Chip.Geometry.Blocks
	chip := block / per
	if block < 0 || chip >= len(d.chips) {
		return 0, nil, 0, fmt.Errorf("%w: block %d", ErrOutOfRange, block)
	}
	return chip, d.chips[chip], block % per, nil
}

// IsLSBPage reports whether the page index addresses an LSB page on the
// device's cell technology.
func (d *Device) IsLSBPage(pageInBlock int) bool {
	return nand.IsLSBPage(d.cfg.Chip.Cell, pageInBlock)
}

// PageProgrammed reports whether the addressed page currently holds data.
func (d *Device) PageProgrammed(block, page int) (bool, error) {
	_, chip, b, err := d.locate(block)
	if err != nil {
		return false, err
	}
	info, err := chip.PageStatus(b, page)
	if err != nil {
		return false, err
	}
	return info.State == nand.PageProgrammed, nil
}

// PagePrograms returns the number of program operations the page has seen
// since its block was last erased.
func (d *Device) PagePrograms(block, page int) (int, error) {
	_, chip, b, err := d.locate(block)
	if err != nil {
		return 0, err
	}
	info, err := chip.PageStatus(b, page)
	if err != nil {
		return 0, err
	}
	return info.Programs, nil
}

// ReadPage reads the full data area of a page into buf (which must be
// PageSize bytes), verifies the ECC of the initially programmed region and
// of every appended delta record, and corrects single-bit errors.
func (d *Device) ReadPage(block, page int, buf []byte) error {
	chipIdx, chip, b, err := d.locate(block)
	if err != nil {
		return err
	}
	g := d.cfg.Chip.Geometry
	if len(buf) != g.PageSize {
		return fmt.Errorf("flashdev: ReadPage buffer %d bytes, want %d", len(buf), g.PageSize)
	}
	d.hook(chipIdx, nand.OpRead)
	oob := make([]byte, g.OOBSize)
	if err := chip.ReadPage(b, page, buf, oob); err != nil {
		return err
	}
	d.pageReads.Add(1)
	d.bytesFromDevice.Add(uint64(len(buf)))
	d.advance(chipIdx, d.cfg.Latency.PageRead+d.cfg.Latency.transfer(len(buf)))
	if d.cfg.DisableECC || g.OOBSize == 0 {
		return nil
	}
	return d.verify(buf, oob)
}

// verifyInitial checks the initial-region ECC (leading cover plus trailing
// tail), correcting a single bit error in place in buf. It returns the
// number of corrected bits.
func verifyInitial(buf, oob []byte) (int, error) {
	coverLen := int(binary.LittleEndian.Uint16(oob[0:oobCoverLenSize]))
	tailLen := int(binary.LittleEndian.Uint16(oob[oobCoverLenSize:oobInitialOff]))
	if coverLen == blankLen || tailLen == blankLen || coverLen+tailLen > len(buf) {
		if coverLen == blankLen {
			return 0, nil // never programmed with an ECC header
		}
		return 0, fmt.Errorf("initial region header out of range")
	}
	code := oob[oobInitialOff : oobInitialOff+ecc.CodeSize]
	if ecc.Blank(code) {
		return 0, nil
	}
	region := coveredRegion(buf, coverLen, tailLen)
	res, err := ecc.Decode(region, code)
	if err != nil {
		return 0, err
	}
	if res.Corrected > 0 && tailLen > 0 {
		// Decode corrected the assembled copy; mirror it back.
		copy(buf[:coverLen], region[:coverLen])
		copy(buf[len(buf)-tailLen:], region[coverLen:])
	}
	return res.Corrected, nil
}

// verify checks the initial-region ECC and all delta-record ECC slots,
// correcting single-bit errors in buf.
func (d *Device) verify(buf, oob []byte) error {
	corrected, err := verifyInitial(buf, oob)
	if err != nil {
		d.uncorrectable.Add(1)
		return fmt.Errorf("%w: initial region: %v", ErrCorrupted, err)
	}
	d.countCorrected(corrected)
	geo := d.Geometry()
	for slot := 0; slot < geo.DeltaSlots; slot++ {
		off := oobSlotsOff + slot*DeltaSlotSize
		hdr := oob[off : off+deltaSlotHeader]
		if hdr[0] == 0xFF && hdr[1] == 0xFF && hdr[2] == 0xFF && hdr[3] == 0xFF {
			continue // blank slot
		}
		dOff := int(binary.LittleEndian.Uint16(hdr[0:2]))
		dLen := int(binary.LittleEndian.Uint16(hdr[2:4]))
		if dOff+dLen > len(buf) {
			d.uncorrectable.Add(1)
			return fmt.Errorf("%w: delta slot %d header out of range", ErrCorrupted, slot)
		}
		code := oob[off+deltaSlotHeader : off+DeltaSlotSize]
		res, err := ecc.Decode(buf[dOff:dOff+dLen], code)
		if err != nil {
			d.uncorrectable.Add(1)
			return fmt.Errorf("%w: delta slot %d: %v", ErrCorrupted, slot, err)
		}
		d.countCorrected(res.Corrected)
	}
	return nil
}

func (d *Device) countCorrected(n int) {
	if n == 0 {
		return
	}
	d.correctedBits.Add(uint64(n))
}

// ProgramPage programs the full data area of a page. eccCover is the number
// of leading bytes protected by the initial ECC; layers using in-place
// appends exclude the delta-record area from the cover so later appends do
// not invalidate the code. A cover of len(data) protects the whole page.
func (d *Device) ProgramPage(block, page int, data []byte, eccCover int) error {
	return d.programPage(block, page, data, eccCover, 0, nil)
}

// ProgramPageCovered is ProgramPage with a split initial ECC cover: the
// leading eccCover bytes and the trailing eccTail bytes are protected,
// leaving the delta-record area between them open for appends.
func (d *Device) ProgramPageCovered(block, page int, data []byte, eccCover, eccTail int) error {
	return d.programPage(block, page, data, eccCover, eccTail, nil)
}

// encodeTag builds the OOB mapping-tag bytes for (lba, seq): the logical
// address, the write sequence number and an ECC over both, so a torn
// program cannot leave a forged-but-valid tag behind.
func encodeTag(lba int, seq uint64) []byte {
	tag := make([]byte, TagSize)
	binary.LittleEndian.PutUint32(tag[0:4], uint32(lba))
	binary.LittleEndian.PutUint64(tag[4:12], seq)
	copy(tag[tagBody:], ecc.Encode(tag[:tagBody]))
	return tag
}

// ProgramPageTagged is ProgramPageCovered plus the FTL mapping tag: the
// logical page address and a monotonically increasing write sequence number
// are stored, with their own ECC, in the page's OOB area. Crash recovery
// scans these tags to rebuild the logical-to-physical mapping from the
// Flash image alone and to order stale copies of the same logical page. The
// tag is written even when data ECC is disabled — it is FTL metadata.
func (d *Device) ProgramPageTagged(block, page int, data []byte, eccCover, eccTail int, lba int, seq uint64) error {
	return d.programPage(block, page, data, eccCover, eccTail, encodeTag(lba, seq))
}

// coveredRegion assembles the bytes protected by the initial ECC: the
// leading cover bytes plus the trailing tail bytes of the page image.
func coveredRegion(data []byte, cover, tail int) []byte {
	if tail <= 0 {
		return data[:cover]
	}
	region := make([]byte, 0, cover+tail)
	region = append(region, data[:cover]...)
	return append(region, data[len(data)-tail:]...)
}

func (d *Device) programPage(block, page int, data []byte, eccCover, eccTail int, tag []byte) error {
	chipIdx, chip, b, err := d.locate(block)
	if err != nil {
		return err
	}
	g := d.cfg.Chip.Geometry
	if len(data) != g.PageSize {
		return fmt.Errorf("flashdev: ProgramPage buffer %d bytes, want %d", len(data), g.PageSize)
	}
	if eccCover < 0 || eccTail < 0 || eccCover+eccTail > len(data) {
		return fmt.Errorf("flashdev: ecc cover %d+%d out of range", eccCover, eccTail)
	}
	d.hook(chipIdx, nand.OpProgram)
	oobLen := 0
	if !d.cfg.DisableECC && g.OOBSize >= oobInitialOff+ecc.CodeSize {
		oobLen = oobInitialOff + ecc.CodeSize
	}
	if tag != nil && g.OOBSize >= oobSlotsOff {
		oobLen = oobSlotsOff
	}
	var oob []byte
	if oobLen > 0 {
		// Erased filler (0xFF) for the regions not written: programming a
		// 0xFF byte leaves the cells untouched.
		oob = make([]byte, oobLen)
		for i := range oob {
			oob[i] = 0xFF
		}
		if !d.cfg.DisableECC && oobLen >= oobInitialOff+ecc.CodeSize {
			binary.LittleEndian.PutUint16(oob[0:oobCoverLenSize], uint16(eccCover))
			binary.LittleEndian.PutUint16(oob[oobCoverLenSize:oobInitialOff], uint16(eccTail))
			copy(oob[oobInitialOff:], ecc.Encode(coveredRegion(data, eccCover, eccTail)))
		}
		if tag != nil && oobLen == oobSlotsOff {
			copy(oob[oobTagOff:], tag)
		}
	}
	if err := chip.Program(b, page, data, oob); err != nil {
		return err
	}
	d.pagePrograms.Add(1)
	d.bytesToDevice.Add(uint64(len(data)))
	lsb := nand.IsLSBPage(d.cfg.Chip.Cell, page)
	d.advance(chipIdx, d.cfg.Latency.programTime(d.cfg.Chip.Cell == nand.SLC, lsb)+
		d.cfg.Latency.transfer(len(data)))
	return nil
}

// ProgramDelta appends delta bytes to an already programmed page by
// partially programming the byte range [offset, offset+len(delta)) of the
// data area and recording a dedicated ECC for the delta in the next free
// OOB slot. It returns the slot index used. This is the device half of the
// write_delta command.
func (d *Device) ProgramDelta(block, page, offset int, delta []byte) (int, error) {
	chipIdx, chip, b, err := d.locate(block)
	if err != nil {
		return 0, err
	}
	g := d.cfg.Chip.Geometry
	if offset < 0 || offset+len(delta) > g.PageSize {
		return 0, fmt.Errorf("flashdev: delta [%d,%d) out of page", offset, offset+len(delta))
	}
	d.hook(chipIdx, nand.OpDeltaProgram)
	slot := -1
	var oobOff int
	var oobData []byte
	if !d.cfg.DisableECC && g.OOBSize > 0 {
		// Find the first blank delta slot.
		oob := make([]byte, g.OOBSize)
		if err := chip.ReadPage(b, page, nil, oob); err != nil {
			return 0, err
		}
		geo := d.Geometry()
		for s := 0; s < geo.DeltaSlots; s++ {
			off := oobSlotsOff + s*DeltaSlotSize
			if ecc.Blank(oob[off : off+DeltaSlotSize]) {
				slot = s
				oobOff = off
				break
			}
		}
		if slot < 0 {
			return 0, ErrNoDeltaSlot
		}
		oobData = make([]byte, DeltaSlotSize)
		binary.LittleEndian.PutUint16(oobData[0:2], uint16(offset))
		binary.LittleEndian.PutUint16(oobData[2:4], uint16(len(delta)))
		copy(oobData[deltaSlotHeader:], ecc.Encode(delta))
	}
	if err := chip.ProgramPartial(b, page, offset, delta, oobOff, oobData); err != nil {
		return 0, err
	}
	d.deltaPrograms.Add(1)
	d.bytesToDevice.Add(uint64(len(delta)))
	lsb := nand.IsLSBPage(d.cfg.Chip.Cell, page)
	d.advance(chipIdx, d.cfg.Latency.programTime(d.cfg.Chip.Cell == nand.SLC, lsb)+
		d.cfg.Latency.transfer(len(delta)))
	return slot, nil
}

// FreeDeltaSlots returns the number of unused delta ECC slots of a page.
func (d *Device) FreeDeltaSlots(block, page int) (int, error) {
	_, chip, b, err := d.locate(block)
	if err != nil {
		return 0, err
	}
	g := d.cfg.Chip.Geometry
	geo := d.Geometry()
	if d.cfg.DisableECC || g.OOBSize == 0 {
		return geo.DeltaSlots, nil
	}
	oob := make([]byte, g.OOBSize)
	if err := chip.ReadPage(b, page, nil, oob); err != nil {
		return 0, err
	}
	free := 0
	for s := 0; s < geo.DeltaSlots; s++ {
		off := oobSlotsOff + s*DeltaSlotSize
		if ecc.Blank(oob[off : off+DeltaSlotSize]) {
			free++
		}
	}
	return free, nil
}

// EraseBlock erases a block.
func (d *Device) EraseBlock(block int) error {
	chipIdx, chip, b, err := d.locate(block)
	if err != nil {
		return err
	}
	d.hook(chipIdx, nand.OpErase)
	if err := chip.Erase(b); err != nil {
		return err
	}
	d.blockErases.Add(1)
	d.advance(chipIdx, d.cfg.Latency.BlockErase)
	return nil
}

// EraseAll erases every block of the device (low-level format).
func (d *Device) EraseAll() error {
	geo := d.Geometry()
	for blk := 0; blk < geo.Blocks; blk++ {
		if err := d.EraseBlock(blk); err != nil {
			return err
		}
	}
	return nil
}
