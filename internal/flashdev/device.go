// Package flashdev assembles one or more simulated NAND chips into a Flash
// device with a command interface, an out-of-band (OOB) layout for ECC, and
// a virtual clock.
//
// The device offers exactly the commands the paper's storage architecture
// needs: whole-page read and program, block erase, and the partial-program
// primitive used by write_delta to append a delta record to an already
// programmed Flash page. All commands advance a deterministic virtual clock
// according to a configurable latency model, so layers above can derive
// throughput figures without depending on wall-clock time.
package flashdev

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"ipa/internal/ecc"
	"ipa/internal/nand"
)

// OOB layout constants. The OOB area of every page holds, in order, the
// cover length of the initial ECC, the initial ECC itself, and a number of
// delta-record ECC slots (Figure 3 of the paper).
const (
	oobCoverLenSize = 2
	oobInitialOff   = oobCoverLenSize
	deltaSlotHeader = 4 // offset (2) + length (2)
	// DeltaSlotSize is the OOB space consumed by one delta-record ECC slot.
	DeltaSlotSize = deltaSlotHeader + ecc.CodeSize
)

// Errors returned by the device.
var (
	// ErrNoDeltaSlot is returned by ProgramDelta when all OOB delta ECC
	// slots of the page are already in use.
	ErrNoDeltaSlot = errors.New("flashdev: no free delta ECC slot in OOB")
	// ErrCorrupted is returned when ECC verification fails beyond repair.
	ErrCorrupted = errors.New("flashdev: uncorrectable data corruption")
	// ErrOutOfRange mirrors nand.ErrOutOfRange at device granularity.
	ErrOutOfRange = errors.New("flashdev: address out of range")
)

// Config configures a Flash device.
type Config struct {
	// Chips is the number of identical NAND chips; their blocks are
	// concatenated into one linear block address space.
	Chips int
	// Chip is the per-chip configuration.
	Chip nand.Config
	// Latency is the timing model driving the virtual clock.
	Latency LatencyModel
	// DisableECC turns off ECC generation and verification (useful for
	// micro-benchmarks isolating the ECC cost).
	DisableECC bool
}

// DefaultConfig returns a single-chip device with default geometry and
// timing.
func DefaultConfig() Config {
	return Config{
		Chips:   1,
		Chip:    nand.DefaultConfig(),
		Latency: DefaultLatencyModel(),
	}
}

// Stats aggregates device-level counters.
type Stats struct {
	PageReads       uint64
	PagePrograms    uint64
	DeltaPrograms   uint64
	BlockErases     uint64
	BytesToDevice   uint64 // bytes transferred host -> device
	BytesFromDevice uint64 // bytes transferred device -> host
	CorrectedBits   uint64
	Uncorrectable   uint64
}

// Device is a simulated Flash storage device.
type Device struct {
	mu    sync.Mutex
	cfg   Config
	chips []*nand.Chip
	clock time.Duration
	stats Stats
}

// New creates a device with all blocks erased.
func New(cfg Config) (*Device, error) {
	if cfg.Chips <= 0 {
		cfg.Chips = 1
	}
	if cfg.Latency == (LatencyModel{}) {
		cfg.Latency = DefaultLatencyModel()
	}
	d := &Device{cfg: cfg}
	for i := 0; i < cfg.Chips; i++ {
		chipCfg := cfg.Chip
		chipCfg.Seed = cfg.Chip.Seed + int64(i)
		chip, err := nand.NewChip(chipCfg)
		if err != nil {
			return nil, fmt.Errorf("flashdev: chip %d: %w", i, err)
		}
		d.chips = append(d.chips, chip)
	}
	return d, nil
}

// Geometry describes the device-level geometry.
type Geometry struct {
	Blocks        int // total blocks across all chips
	PagesPerBlock int
	PageSize      int
	OOBSize       int
	DeltaSlots    int // delta ECC slots available per page
}

// Geometry returns the device geometry.
func (d *Device) Geometry() Geometry {
	g := d.cfg.Chip.Geometry
	slots := 0
	if g.OOBSize > oobInitialOff+ecc.CodeSize {
		slots = (g.OOBSize - oobInitialOff - ecc.CodeSize) / DeltaSlotSize
	}
	return Geometry{
		Blocks:        g.Blocks * d.cfg.Chips,
		PagesPerBlock: g.PagesPerBlock,
		PageSize:      g.PageSize,
		OOBSize:       g.OOBSize,
		DeltaSlots:    slots,
	}
}

// CellType returns the cell technology of the underlying chips.
func (d *Device) CellType() nand.CellType { return d.cfg.Chip.Cell }

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Now returns the current virtual time of the device.
func (d *Device) Now() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.clock
}

// AdvanceClock adds extra virtual time, e.g. CPU cost charged by layers
// above the device.
func (d *Device) AdvanceClock(dt time.Duration) {
	d.mu.Lock()
	d.clock += dt
	d.mu.Unlock()
}

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the device counters. The virtual clock and the per-
// block wear state are preserved.
func (d *Device) ResetStats() {
	d.mu.Lock()
	d.stats = Stats{}
	d.mu.Unlock()
}

// ChipStats returns the summed raw chip counters.
func (d *Device) ChipStats() nand.Stats {
	var s nand.Stats
	for _, c := range d.chips {
		cs := c.Stats()
		s.PageReads += cs.PageReads
		s.PagePrograms += cs.PagePrograms
		s.PartialPrograms += cs.PartialPrograms
		s.BlockErases += cs.BlockErases
		s.InterferenceBits += cs.InterferenceBits
		s.OverwriteDenied += cs.OverwriteDenied
	}
	return s
}

// TotalErases returns the total number of block erases performed, a proxy
// for device wear.
func (d *Device) TotalErases() uint64 {
	var sum uint64
	for _, c := range d.chips {
		sum += c.TotalErases()
	}
	return sum
}

// MaxEraseCount returns the highest per-block erase count on the device.
func (d *Device) MaxEraseCount() int {
	max := 0
	for _, c := range d.chips {
		if m := c.MaxEraseCount(); m > max {
			max = m
		}
	}
	return max
}

// EnduranceCycles returns the per-block endurance of the underlying chips.
func (d *Device) EnduranceCycles() int {
	return d.chips[0].Config().EnduranceCycles
}

// BlockEraseCount returns the erase count of a device block.
func (d *Device) BlockEraseCount(block int) (int, error) {
	chip, b, err := d.locate(block)
	if err != nil {
		return 0, err
	}
	return chip.EraseCount(b)
}

// CopyPage migrates a programmed page to another (erased) location, as done
// by garbage collection (copy-back). Data and OOB are copied verbatim, so
// the initial ECC and every per-delta-record ECC slot remain valid at the
// destination and further appends can still use the remaining slots.
func (d *Device) CopyPage(srcBlock, srcPage, dstBlock, dstPage int) error {
	srcChip, sb, err := d.locate(srcBlock)
	if err != nil {
		return err
	}
	dstChip, db, err := d.locate(dstBlock)
	if err != nil {
		return err
	}
	g := d.cfg.Chip.Geometry
	data := make([]byte, g.PageSize)
	oob := make([]byte, g.OOBSize)
	if err := srcChip.ReadPage(sb, srcPage, data, oob); err != nil {
		return err
	}
	if err := dstChip.Program(db, dstPage, data, oob); err != nil {
		return err
	}
	d.mu.Lock()
	d.stats.PageReads++
	d.stats.PagePrograms++
	lsb := nand.IsLSBPage(d.cfg.Chip.Cell, dstPage)
	// Copy-back stays on the device: no host bus transfer is charged.
	d.clock += d.cfg.Latency.PageRead +
		d.cfg.Latency.programTime(d.cfg.Chip.Cell == nand.SLC, lsb)
	d.mu.Unlock()
	return nil
}

// locate translates a device block index into (chip, chip-local block).
func (d *Device) locate(block int) (*nand.Chip, int, error) {
	per := d.cfg.Chip.Geometry.Blocks
	chip := block / per
	if block < 0 || chip >= len(d.chips) {
		return nil, 0, fmt.Errorf("%w: block %d", ErrOutOfRange, block)
	}
	return d.chips[chip], block % per, nil
}

// IsLSBPage reports whether the page index addresses an LSB page on the
// device's cell technology.
func (d *Device) IsLSBPage(pageInBlock int) bool {
	return nand.IsLSBPage(d.cfg.Chip.Cell, pageInBlock)
}

// PageProgrammed reports whether the addressed page currently holds data.
func (d *Device) PageProgrammed(block, page int) (bool, error) {
	chip, b, err := d.locate(block)
	if err != nil {
		return false, err
	}
	info, err := chip.PageStatus(b, page)
	if err != nil {
		return false, err
	}
	return info.State == nand.PageProgrammed, nil
}

// PagePrograms returns the number of program operations the page has seen
// since its block was last erased.
func (d *Device) PagePrograms(block, page int) (int, error) {
	chip, b, err := d.locate(block)
	if err != nil {
		return 0, err
	}
	info, err := chip.PageStatus(b, page)
	if err != nil {
		return 0, err
	}
	return info.Programs, nil
}

// ReadPage reads the full data area of a page into buf (which must be
// PageSize bytes), verifies the ECC of the initially programmed region and
// of every appended delta record, and corrects single-bit errors.
func (d *Device) ReadPage(block, page int, buf []byte) error {
	chip, b, err := d.locate(block)
	if err != nil {
		return err
	}
	g := d.cfg.Chip.Geometry
	if len(buf) != g.PageSize {
		return fmt.Errorf("flashdev: ReadPage buffer %d bytes, want %d", len(buf), g.PageSize)
	}
	oob := make([]byte, g.OOBSize)
	if err := chip.ReadPage(b, page, buf, oob); err != nil {
		return err
	}
	d.mu.Lock()
	d.stats.PageReads++
	d.stats.BytesFromDevice += uint64(len(buf))
	d.clock += d.cfg.Latency.PageRead + d.cfg.Latency.transfer(len(buf))
	d.mu.Unlock()
	if d.cfg.DisableECC || g.OOBSize == 0 {
		return nil
	}
	return d.verify(buf, oob)
}

// verify checks the initial-region ECC and all delta-record ECC slots,
// correcting single-bit errors in buf.
func (d *Device) verify(buf, oob []byte) error {
	coverLen := binary.LittleEndian.Uint16(oob[0:oobCoverLenSize])
	if coverLen != 0xFFFF && int(coverLen) <= len(buf) {
		code := oob[oobInitialOff : oobInitialOff+ecc.CodeSize]
		if !ecc.Blank(code) {
			res, err := ecc.Decode(buf[:coverLen], code)
			if err != nil {
				d.countCorruption()
				return fmt.Errorf("%w: initial region: %v", ErrCorrupted, err)
			}
			d.countCorrected(res.Corrected)
		}
	}
	geo := d.Geometry()
	for slot := 0; slot < geo.DeltaSlots; slot++ {
		off := oobInitialOff + ecc.CodeSize + slot*DeltaSlotSize
		hdr := oob[off : off+deltaSlotHeader]
		if hdr[0] == 0xFF && hdr[1] == 0xFF && hdr[2] == 0xFF && hdr[3] == 0xFF {
			continue // blank slot
		}
		dOff := int(binary.LittleEndian.Uint16(hdr[0:2]))
		dLen := int(binary.LittleEndian.Uint16(hdr[2:4]))
		if dOff+dLen > len(buf) {
			d.countCorruption()
			return fmt.Errorf("%w: delta slot %d header out of range", ErrCorrupted, slot)
		}
		code := oob[off+deltaSlotHeader : off+DeltaSlotSize]
		res, err := ecc.Decode(buf[dOff:dOff+dLen], code)
		if err != nil {
			d.countCorruption()
			return fmt.Errorf("%w: delta slot %d: %v", ErrCorrupted, slot, err)
		}
		d.countCorrected(res.Corrected)
	}
	return nil
}

func (d *Device) countCorrected(n int) {
	if n == 0 {
		return
	}
	d.mu.Lock()
	d.stats.CorrectedBits += uint64(n)
	d.mu.Unlock()
}

func (d *Device) countCorruption() {
	d.mu.Lock()
	d.stats.Uncorrectable++
	d.mu.Unlock()
}

// ProgramPage programs the full data area of a page. eccCover is the number
// of leading bytes protected by the initial ECC; layers using in-place
// appends exclude the delta-record area from the cover so later appends do
// not invalidate the code. A cover of len(data) protects the whole page.
func (d *Device) ProgramPage(block, page int, data []byte, eccCover int) error {
	chip, b, err := d.locate(block)
	if err != nil {
		return err
	}
	g := d.cfg.Chip.Geometry
	if len(data) != g.PageSize {
		return fmt.Errorf("flashdev: ProgramPage buffer %d bytes, want %d", len(data), g.PageSize)
	}
	if eccCover < 0 || eccCover > len(data) {
		return fmt.Errorf("flashdev: ecc cover %d out of range", eccCover)
	}
	var oob []byte
	if !d.cfg.DisableECC && g.OOBSize >= oobInitialOff+ecc.CodeSize {
		oob = make([]byte, oobInitialOff+ecc.CodeSize)
		binary.LittleEndian.PutUint16(oob[0:2], uint16(eccCover))
		copy(oob[oobInitialOff:], ecc.Encode(data[:eccCover]))
	}
	if err := chip.Program(b, page, data, oob); err != nil {
		return err
	}
	d.mu.Lock()
	d.stats.PagePrograms++
	d.stats.BytesToDevice += uint64(len(data))
	lsb := nand.IsLSBPage(d.cfg.Chip.Cell, page)
	d.clock += d.cfg.Latency.programTime(d.cfg.Chip.Cell == nand.SLC, lsb) +
		d.cfg.Latency.transfer(len(data))
	d.mu.Unlock()
	return nil
}

// ProgramDelta appends delta bytes to an already programmed page by
// partially programming the byte range [offset, offset+len(delta)) of the
// data area and recording a dedicated ECC for the delta in the next free
// OOB slot. It returns the slot index used. This is the device half of the
// write_delta command.
func (d *Device) ProgramDelta(block, page, offset int, delta []byte) (int, error) {
	chip, b, err := d.locate(block)
	if err != nil {
		return 0, err
	}
	g := d.cfg.Chip.Geometry
	if offset < 0 || offset+len(delta) > g.PageSize {
		return 0, fmt.Errorf("flashdev: delta [%d,%d) out of page", offset, offset+len(delta))
	}
	slot := -1
	var oobOff int
	var oobData []byte
	if !d.cfg.DisableECC && g.OOBSize > 0 {
		// Find the first blank delta slot.
		oob := make([]byte, g.OOBSize)
		if err := chip.ReadPage(b, page, nil, oob); err != nil {
			return 0, err
		}
		geo := d.Geometry()
		for s := 0; s < geo.DeltaSlots; s++ {
			off := oobInitialOff + ecc.CodeSize + s*DeltaSlotSize
			if ecc.Blank(oob[off : off+DeltaSlotSize]) {
				slot = s
				oobOff = off
				break
			}
		}
		if slot < 0 {
			return 0, ErrNoDeltaSlot
		}
		oobData = make([]byte, DeltaSlotSize)
		binary.LittleEndian.PutUint16(oobData[0:2], uint16(offset))
		binary.LittleEndian.PutUint16(oobData[2:4], uint16(len(delta)))
		copy(oobData[deltaSlotHeader:], ecc.Encode(delta))
	}
	if err := chip.ProgramPartial(b, page, offset, delta, oobOff, oobData); err != nil {
		return 0, err
	}
	d.mu.Lock()
	d.stats.DeltaPrograms++
	d.stats.BytesToDevice += uint64(len(delta))
	lsb := nand.IsLSBPage(d.cfg.Chip.Cell, page)
	d.clock += d.cfg.Latency.programTime(d.cfg.Chip.Cell == nand.SLC, lsb) +
		d.cfg.Latency.transfer(len(delta))
	d.mu.Unlock()
	return slot, nil
}

// FreeDeltaSlots returns the number of unused delta ECC slots of a page.
func (d *Device) FreeDeltaSlots(block, page int) (int, error) {
	chip, b, err := d.locate(block)
	if err != nil {
		return 0, err
	}
	g := d.cfg.Chip.Geometry
	geo := d.Geometry()
	if d.cfg.DisableECC || g.OOBSize == 0 {
		return geo.DeltaSlots, nil
	}
	oob := make([]byte, g.OOBSize)
	if err := chip.ReadPage(b, page, nil, oob); err != nil {
		return 0, err
	}
	free := 0
	for s := 0; s < geo.DeltaSlots; s++ {
		off := oobInitialOff + ecc.CodeSize + s*DeltaSlotSize
		if ecc.Blank(oob[off : off+DeltaSlotSize]) {
			free++
		}
	}
	return free, nil
}

// EraseBlock erases a block.
func (d *Device) EraseBlock(block int) error {
	chip, b, err := d.locate(block)
	if err != nil {
		return err
	}
	if err := chip.Erase(b); err != nil {
		return err
	}
	d.mu.Lock()
	d.stats.BlockErases++
	d.clock += d.cfg.Latency.BlockErase
	d.mu.Unlock()
	return nil
}

// EraseAll erases every block of the device (low-level format).
func (d *Device) EraseAll() error {
	geo := d.Geometry()
	for blk := 0; blk < geo.Blocks; blk++ {
		if err := d.EraseBlock(blk); err != nil {
			return err
		}
	}
	return nil
}
