package index

import (
	"fmt"
	"sync"

	"ipa/internal/buffer"
	"ipa/internal/heap"
	"ipa/internal/storage"
)

// Secondary is the persistent entry storage of one non-unique secondary
// index. It reuses the primary-key entry-page machinery — fixed 16-byte
// entries (secondary key, packed tuple RID) in slotted pages owned by the
// index's own object identifier and NoFTL region — but is keyed by the
// *pair* (key, RID): many tuples may share one secondary key, and each
// contributes its own entry. Like the primary-key file, tombstoned slots
// are recycled through a free list, and all edits are the tiny in-place
// patches the delta-append machinery absorbs.
//
// Secondary maintenance is logged with the same logical WAL vocabulary as
// the primary key (RecIndexInsert/RecIndexDelete carry the index object,
// the key and the RID), so Add and Remove are idempotent: redo may replay
// an operation whose effect already survived on Flash.
type Secondary struct {
	mu      sync.Mutex
	entries *heap.File
	loc     map[Entry]uint64 // (key, RID) -> packed entry-slot location
	free    []uint64         // packed locations of tombstoned, reusable slots
}

// NewSecondary creates an empty secondary-index file owned by objectID.
func NewSecondary(store *storage.Manager, pool *buffer.Pool, objectID uint32) *Secondary {
	return &Secondary{
		entries: heap.New(store, pool, objectID, EntrySize),
		loc:     make(map[Entry]uint64),
	}
}

// ObjectID returns the owning object identifier of the index.
func (s *Secondary) ObjectID() uint32 { return s.entries.ObjectID() }

// Len returns the number of live (key, RID) entries.
func (s *Secondary) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.loc)
}

// Pages returns the number of entry pages of the index.
func (s *Secondary) Pages() int { return len(s.entries.PageIDs()) }

// PageIDs returns the identifiers of all entry pages.
func (s *Secondary) PageIDs() []uint64 { return s.entries.PageIDs() }

// Add stores the (key, value) pair, recycling a tombstoned slot when one
// is free and appending a fresh entry otherwise. Adding a pair that is
// already present is a no-op, which makes WAL redo idempotent.
func (s *Secondary) Add(key int64, value uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := Entry{Key: key, Value: value}
	if _, ok := s.loc[e]; ok {
		return nil
	}
	if n := len(s.free); n > 0 {
		packed := s.free[n-1]
		if err := s.entries.Reuse(heap.Unpack(packed), encodeEntry(key, value)); err != nil {
			return fmt.Errorf("index: reuse slot for key %d: %w", key, err)
		}
		s.free = s.free[:n-1]
		s.loc[e] = packed
		return nil
	}
	rid, err := s.entries.Insert(encodeEntry(key, value))
	if err != nil {
		return fmt.Errorf("index: insert key %d: %w", key, err)
	}
	s.loc[e] = rid.Pack()
	return nil
}

// Remove deletes the (key, value) pair, tombstoning its slot and queueing
// it for reuse. Removing an absent pair is a no-op (idempotent replay).
func (s *Secondary) Remove(key int64, value uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := Entry{Key: key, Value: value}
	packed, ok := s.loc[e]
	if !ok {
		return nil
	}
	if err := s.entries.Delete(heap.Unpack(packed)); err != nil {
		return fmt.Errorf("index: delete key %d: %w", key, err)
	}
	delete(s.loc, e)
	s.free = append(s.free, packed)
	return nil
}

// Contains reports whether the (key, value) pair has a live entry.
func (s *Secondary) Contains(key int64, value uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.loc[Entry{Key: key, Value: value}]
	return ok
}

// AdoptPages installs the entry pages that survived a crash (ascending
// order). Load must be called afterwards to rebuild the pair locations.
func (s *Secondary) AdoptPages(pids []uint64) { s.entries.AdoptPages(pids) }

// Load scans the adopted entry pages, rebuilds the pair locations and the
// reusable-slot free list, and returns the surviving live entries. A crash
// between the flush of two entry pages can leave duplicate entries for one
// (key, RID) pair — a tombstone unflushed while the reinserted copy
// flushed elsewhere; Load keeps the first and tombstones the rest, and WAL
// replay then restores the exact committed pair set.
func (s *Secondary) Load() ([]Entry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.loc = make(map[Entry]uint64)
	s.free = nil
	var (
		out  []Entry
		dups []heap.RID
	)
	err := s.entries.ScanSlots(func(rid heap.RID, tuple []byte, deleted bool) bool {
		if deleted {
			s.free = append(s.free, rid.Pack())
			return true
		}
		e := decodeEntry(tuple)
		if _, seen := s.loc[e]; seen {
			dups = append(dups, rid)
			return true
		}
		s.loc[e] = rid.Pack()
		out = append(out, e)
		return true
	})
	if err != nil {
		return nil, fmt.Errorf("index: load: %w", err)
	}
	s.entries.SetCount(uint64(len(s.loc) + len(dups)))
	for _, rid := range dups {
		if err := s.entries.Delete(rid); err != nil {
			return nil, fmt.Errorf("index: drop duplicate entry %s: %w", rid, err)
		}
		s.free = append(s.free, rid.Pack())
	}
	return out, nil
}
