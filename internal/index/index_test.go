package index

import (
	"testing"

	"ipa/internal/buffer"
	"ipa/internal/core"
	"ipa/internal/flashdev"
	"ipa/internal/ftl"
	"ipa/internal/nand"
	"ipa/internal/region"
	"ipa/internal/storage"
)

// testFile builds the full stack (device, FTL, storage, pool) and returns
// an index file plus the pool for flushing.
func testFile(t *testing.T, poolFrames int) (*File, *buffer.Pool, *storage.Manager) {
	t.Helper()
	dev, err := flashdev.New(flashdev.Config{
		Chips: 1,
		Chip: nand.Config{
			Geometry:        nand.Geometry{Blocks: 32, PagesPerBlock: 16, PageSize: 2048, OOBSize: 128},
			Cell:            nand.MLC,
			StrictOverwrite: true,
			Seed:            4,
		},
		Latency: flashdev.DefaultLatencyModel(),
	})
	if err != nil {
		t.Fatalf("flashdev.New: %v", err)
	}
	scheme := core.Scheme{N: 2, M: 4}
	f, err := ftl.New(dev, ftl.Config{
		FlashMode:     nand.ModePSLC,
		EccCoverBytes: 2048 - 16 - scheme.AreaSize(48),
	})
	if err != nil {
		t.Fatalf("ftl.New: %v", err)
	}
	regions := region.NewManager(region.Region{Name: "default", Scheme: scheme, FlashMode: nand.ModePSLC})
	regions.Assign(7, region.Region{Name: "t.pk", Scheme: scheme, FlashMode: nand.ModePSLC, Kind: region.KindIndex})
	store, err := storage.New(f, storage.Config{Mode: storage.WriteIPANative, Regions: regions, Analytic: true})
	if err != nil {
		t.Fatalf("storage.New: %v", err)
	}
	pool, err := buffer.New(store, poolFrames)
	if err != nil {
		t.Fatalf("buffer.New: %v", err)
	}
	return New(store, pool, 7), pool, store
}

func TestSetDeleteLoadRoundTrip(t *testing.T) {
	ix, pool, _ := testFile(t, 8)
	const keys = 500
	for k := int64(0); k < keys; k++ {
		if err := ix.Set(k, uint64(k)<<16|5); err != nil {
			t.Fatalf("Set %d: %v", k, err)
		}
	}
	// Remap a few (in-place value rewrite) and delete a few.
	for k := int64(0); k < keys; k += 7 {
		if err := ix.Set(k, uint64(k)<<16|9); err != nil {
			t.Fatalf("remap %d: %v", k, err)
		}
	}
	for k := int64(1); k < keys; k += 13 {
		if err := ix.Delete(k); err != nil {
			t.Fatalf("Delete %d: %v", k, err)
		}
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}

	// A fresh file adopting the same pages must see exactly the live set.
	reborn := New(nil, pool, 7)
	reborn.entries = ix.entries // share the underlying page list/pool
	entries, err := reborn.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	got := make(map[int64]uint64, len(entries))
	for _, e := range entries {
		got[e.Key] = e.Value
	}
	for k := int64(0); k < keys; k++ {
		want := uint64(k)<<16 | 5
		if k%7 == 0 {
			want = uint64(k)<<16 | 9
		}
		deleted := k >= 1 && (k-1)%13 == 0
		v, ok := got[k]
		if deleted {
			if ok {
				t.Fatalf("key %d: deleted entry resurrected", k)
			}
			continue
		}
		if !ok || v != want {
			t.Fatalf("key %d: got (%v,%d), want %d", k, ok, v, want)
		}
	}
}

func TestLoadTombstonesDuplicates(t *testing.T) {
	ix, pool, _ := testFile(t, 8)
	// Forge a duplicate the way a crash can: two live entries for one key.
	if _, err := ix.entries.Insert(encodeEntry(42, 111)); err != nil {
		t.Fatalf("insert: %v", err)
	}
	if _, err := ix.entries.Insert(encodeEntry(42, 222)); err != nil {
		t.Fatalf("insert: %v", err)
	}
	if _, err := ix.entries.Insert(encodeEntry(7, 700)); err != nil {
		t.Fatalf("insert: %v", err)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	entries, err := ix.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(entries) != 2 {
		t.Fatalf("Load returned %d entries, want 2 (duplicate dropped)", len(entries))
	}
	if ix.Len() != 2 {
		t.Fatalf("Len=%d after dedup, want 2", ix.Len())
	}
	// A second load must see the tombstoned duplicate gone for good.
	if err := pool.FlushAll(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	entries, err = ix.Load()
	if err != nil {
		t.Fatalf("reload: %v", err)
	}
	if len(entries) != 2 {
		t.Fatalf("reload returned %d entries, want 2", len(entries))
	}
}

// TestDeleteReinsertRecyclesEntrySlots pins the space bound: steady-state
// delete/reinsert churn must reuse tombstoned entry slots instead of
// growing the file without limit.
func TestDeleteReinsertRecyclesEntrySlots(t *testing.T) {
	ix, pool, _ := testFile(t, 8)
	const keys = 300
	for k := int64(0); k < keys; k++ {
		if err := ix.Set(k, uint64(k)); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}
	base := ix.Pages()
	// 20 full delete/reinsert cycles over the whole key space, with
	// flushes in between so the churn reaches the pages.
	for round := 0; round < 20; round++ {
		for k := int64(0); k < keys; k += 3 {
			if err := ix.Delete(k); err != nil {
				t.Fatalf("Delete: %v", err)
			}
		}
		if err := pool.FlushAll(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		for k := int64(0); k < keys; k += 3 {
			if err := ix.Set(k, uint64(k)+uint64(round)); err != nil {
				t.Fatalf("reinsert: %v", err)
			}
		}
	}
	if got := ix.Pages(); got != base {
		t.Fatalf("entry pages grew %d -> %d under steady-state churn; slots not recycled", base, got)
	}
	if ix.Len() != keys {
		t.Fatalf("Len=%d, want %d", ix.Len(), keys)
	}
}

// TestLoadRebuildsFreeList verifies recovery re-learns the reusable slots
// from the surviving tombstones.
func TestLoadRebuildsFreeList(t *testing.T) {
	ix, pool, _ := testFile(t, 8)
	for k := int64(0); k < 100; k++ {
		if err := ix.Set(k, uint64(k)); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}
	for k := int64(0); k < 100; k += 2 {
		if err := ix.Delete(k); err != nil {
			t.Fatalf("Delete: %v", err)
		}
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	base := ix.Pages()
	if _, err := ix.Load(); err != nil {
		t.Fatalf("Load: %v", err)
	}
	// Reinserting the deleted half must fit entirely into recycled slots.
	for k := int64(0); k < 100; k += 2 {
		if err := ix.Set(k, uint64(k)); err != nil {
			t.Fatalf("reinsert: %v", err)
		}
	}
	if got := ix.Pages(); got != base {
		t.Fatalf("entry pages grew %d -> %d after Load; free list not rebuilt", base, got)
	}
}

func TestIndexEvictionsUseDeltaAppends(t *testing.T) {
	ix, pool, store := testFile(t, 4)
	// Fill one page, flush it, then make single-entry edits with eviction
	// pressure: the tiny edits must be persisted as index delta appends.
	for k := int64(0); k < 100; k++ {
		if err := ix.Set(k, uint64(k)); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	for k := int64(0); k < 100; k += 25 {
		if err := ix.Set(k, uint64(k)+1_000_000); err != nil {
			t.Fatalf("remap: %v", err)
		}
		if err := pool.FlushAll(); err != nil {
			t.Fatalf("flush: %v", err)
		}
	}
	s := store.Stats()
	if s.IndexIPAAppends == 0 {
		t.Fatalf("expected index delta appends, stats %+v", s)
	}
	if s.IndexDirtyEvictions == 0 {
		t.Fatalf("index counters not populated: %+v", s)
	}
	if s.IndexDirtyEvictions != s.DirtyEvictions {
		t.Fatalf("all evictions here are index evictions: index=%d total=%d", s.IndexDirtyEvictions, s.DirtyEvictions)
	}
}
