// Package index implements the persistent side of the engine's indexes —
// the unique primary-key index (File) and non-unique secondary indexes
// (Secondary): entry pages that live in the buffer pool and reach Flash
// through the same storage-manager write paths as heap pages.
//
// Each index is stored as a file of fixed 16-byte entries (key, packed
// RID) kept in slotted pages owned by the index's own object identifier
// and NoFTL region. The primary-key file holds one entry per key; a
// secondary file holds one entry per (key, RID) pair, so many tuples may
// share a key. Index maintenance is exactly the small-update pattern
// In-Place Appends targets: an insert appends one entry (a handful of
// bytes plus a slot), a delete flips one slot marker, a remap rewrites
// eight bytes in place — all of which the change tracker turns into N×M
// delta records instead of full page rewrites.
//
// The sorted search structure (internal/btree) stays volatile: inner nodes
// are derivable metadata, rebuilt at open time from the entries themselves,
// so no inter-page pointers ever reach Flash and recovery never depends on
// a multi-page structure modification being flushed atomically. After a
// crash, any subset of flushed entry pages plus the durable write-ahead log
// reconstructs the exact committed mapping (see ipa.Reopen).
package index

import (
	"encoding/binary"
	"fmt"
	"sync"

	"ipa/internal/buffer"
	"ipa/internal/heap"
	"ipa/internal/storage"
)

// EntrySize is the on-page size of one index entry: int64 key plus packed
// 48/16-bit RID value, both little-endian.
const EntrySize = 16

// Entry is one persistent index entry.
type Entry struct {
	Key   int64
	Value uint64
}

// encodeEntry serialises an entry.
func encodeEntry(key int64, value uint64) []byte {
	buf := make([]byte, EntrySize)
	binary.LittleEndian.PutUint64(buf[0:], uint64(key))
	binary.LittleEndian.PutUint64(buf[8:], value)
	return buf
}

// decodeEntry parses an entry.
func decodeEntry(buf []byte) Entry {
	return Entry{
		Key:   int64(binary.LittleEndian.Uint64(buf[0:])),
		Value: binary.LittleEndian.Uint64(buf[8:]),
	}
}

// File is the persistent entry storage of one index. It tracks where each
// key's entry lives so deletes and remaps can edit the entry in place,
// and keeps a free list of tombstoned slots so delete/reinsert churn
// recycles entry space instead of growing the file without bound. Slot
// recycling is safe here — unlike heap files — because index WAL records
// are logical (keyed), never slot-addressed.
type File struct {
	mu      sync.Mutex
	entries *heap.File
	loc     map[int64]uint64 // key -> packed entry RID
	free    []uint64         // packed RIDs of tombstoned, reusable entry slots
}

// New creates an empty index file owned by objectID.
func New(store *storage.Manager, pool *buffer.Pool, objectID uint32) *File {
	return &File{
		entries: heap.New(store, pool, objectID, EntrySize),
		loc:     make(map[int64]uint64),
	}
}

// ObjectID returns the owning object identifier of the index.
func (f *File) ObjectID() uint32 { return f.entries.ObjectID() }

// Len returns the number of live entries.
func (f *File) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.loc)
}

// Pages returns the number of entry pages of the index.
func (f *File) Pages() int { return len(f.entries.PageIDs()) }

// PageIDs returns the identifiers of all entry pages.
func (f *File) PageIDs() []uint64 { return f.entries.PageIDs() }

// Set maps key to value, rewriting the existing entry's value bytes in
// place (an 8-byte patch), recycling a tombstoned slot (a 16-byte entry
// rewrite plus a 2-byte slot revive), or — only when no slot is free —
// appending a fresh entry. All three are the small in-place edits the
// delta-append machinery absorbs.
func (f *File) Set(key int64, value uint64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if packed, ok := f.loc[key]; ok {
		img := make([]byte, 8)
		binary.LittleEndian.PutUint64(img, value)
		if err := f.entries.UpdateAt(heap.Unpack(packed), 8, img); err != nil {
			return fmt.Errorf("index: remap key %d: %w", key, err)
		}
		return nil
	}
	if n := len(f.free); n > 0 {
		packed := f.free[n-1]
		if err := f.entries.Reuse(heap.Unpack(packed), encodeEntry(key, value)); err != nil {
			return fmt.Errorf("index: reuse slot for key %d: %w", key, err)
		}
		f.free = f.free[:n-1]
		f.loc[key] = packed
		return nil
	}
	rid, err := f.entries.Insert(encodeEntry(key, value))
	if err != nil {
		return fmt.Errorf("index: insert key %d: %w", key, err)
	}
	f.loc[key] = rid.Pack()
	return nil
}

// Delete removes key's entry (tombstoning its slot and queueing it for
// reuse). Deleting an absent key is a no-op, which recovery relies on for
// idempotent replay.
func (f *File) Delete(key int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	packed, ok := f.loc[key]
	if !ok {
		return nil
	}
	if err := f.entries.Delete(heap.Unpack(packed)); err != nil {
		return fmt.Errorf("index: delete key %d: %w", key, err)
	}
	delete(f.loc, key)
	f.free = append(f.free, packed)
	return nil
}

// Contains reports whether key has a live entry.
func (f *File) Contains(key int64) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	_, ok := f.loc[key]
	return ok
}

// AdoptPages installs the entry pages that survived a crash (ascending
// order). Load must be called afterwards to rebuild the entry locations.
func (f *File) AdoptPages(pids []uint64) { f.entries.AdoptPages(pids) }

// Load scans the adopted entry pages, rebuilds the key-to-entry locations
// and the reusable-slot free list, and returns the surviving live
// entries. A crash between the flush of two entry pages can leave
// duplicate entries for one key (delete tombstone unflushed, reinserted
// entry flushed); Load keeps the first and tombstones the rest — WAL
// replay then rewrites the survivor with the committed value, so the
// arbitrary choice never becomes visible.
func (f *File) Load() ([]Entry, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.loc = make(map[int64]uint64)
	f.free = nil
	var (
		out  []Entry
		dups []heap.RID
	)
	err := f.entries.ScanSlots(func(rid heap.RID, tuple []byte, deleted bool) bool {
		if deleted {
			f.free = append(f.free, rid.Pack())
			return true
		}
		e := decodeEntry(tuple)
		if _, seen := f.loc[e.Key]; seen {
			dups = append(dups, rid)
			return true
		}
		f.loc[e.Key] = rid.Pack()
		out = append(out, e)
		return true
	})
	if err != nil {
		return nil, fmt.Errorf("index: load: %w", err)
	}
	// Fix the live count before tombstoning so the deletes account against
	// a consistent base.
	f.entries.SetCount(uint64(len(f.loc) + len(dups)))
	for _, rid := range dups {
		if err := f.entries.Delete(rid); err != nil {
			return nil, fmt.Errorf("index: drop duplicate entry %s: %w", rid, err)
		}
		f.free = append(f.free, rid.Pack())
	}
	return out, nil
}
