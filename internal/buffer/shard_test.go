package buffer

import (
	"sync"
	"testing"
)

// TestShardSizing covers the automatic shard count and NewSharded.
func TestShardSizing(t *testing.T) {
	cases := []struct {
		frames int
		shards int
	}{
		{1, 1}, {4, 1}, {8, 1}, {15, 1}, {16, 2}, {48, 4}, {128, 16}, {256, 16}, {1024, 16},
	}
	for _, c := range cases {
		pool, err := New(newMemIO(64), c.frames)
		if err != nil {
			t.Fatalf("New(%d): %v", c.frames, err)
		}
		if pool.Shards() != c.shards {
			t.Errorf("New(%d): %d shards, want %d", c.frames, pool.Shards(), c.shards)
		}
		if pool.Capacity() != c.frames {
			t.Errorf("New(%d): capacity %d", c.frames, pool.Capacity())
		}
	}
	if _, err := NewSharded(newMemIO(64), 8, 16); err == nil {
		t.Fatalf("more shards than frames must be rejected")
	}
	if _, err := NewSharded(newMemIO(64), 8, 0); err == nil {
		t.Fatalf("zero shards must be rejected")
	}
	pool, err := NewSharded(newMemIO(64), 10, 4)
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	if pool.Capacity() != 10 || pool.Shards() != 4 {
		t.Fatalf("NewSharded: capacity %d shards %d", pool.Capacity(), pool.Shards())
	}
}

// TestFetchSharedAllowsConcurrentReaders verifies that two shared handles
// to the same page can be held at once (an exclusive latch would deadlock
// here).
func TestFetchSharedAllowsConcurrentReaders(t *testing.T) {
	io := newMemIO(64)
	io.seed(1, 0xAB)
	pool, _ := New(io, 4)
	h1, err := pool.FetchShared(1)
	if err != nil {
		t.Fatalf("FetchShared: %v", err)
	}
	h2, err := pool.FetchShared(1)
	if err != nil {
		t.Fatalf("second FetchShared: %v", err)
	}
	if h1.Data()[0] != 0xAB || h2.Data()[0] != 0xAB {
		t.Fatalf("shared readers see wrong data")
	}
	h1.Release()
	h2.Release()
	// The frame must be writable again afterwards.
	h3, err := pool.Fetch(1)
	if err != nil {
		t.Fatalf("Fetch after shared readers: %v", err)
	}
	h3.Data()[0] = 0xCD
	h3.MarkDirty()
	h3.Release()
}

// TestConcurrentFetchAcrossShards runs parallel writers and readers over a
// working set larger than the pool, so fetches, evictions and write-backs
// from different shards interleave (run with -race).
func TestConcurrentFetchAcrossShards(t *testing.T) {
	io := newMemIO(128)
	const pages = 96
	for pid := uint64(0); pid < pages; pid++ {
		io.seed(pid, byte(pid))
	}
	pool, err := NewSharded(io, 32, 4)
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	const workers = 8
	const opsPerWorker = 400
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerWorker; i++ {
				pid := uint64((w*opsPerWorker + i*7) % pages)
				if i%3 == 0 {
					// Writer: bump the page's second byte under the
					// exclusive latch.
					h, err := pool.Fetch(pid)
					if err != nil {
						t.Errorf("Fetch %d: %v", pid, err)
						return
					}
					h.Data()[1]++
					if h.Tracker() != nil {
						h.Tracker().RecordChange(1, h.Data()[1]-1, h.Data()[1])
					}
					h.MarkDirty()
					h.Release()
				} else {
					// Reader: the first byte never changes.
					h, err := pool.FetchShared(pid)
					if err != nil {
						t.Errorf("FetchShared %d: %v", pid, err)
						return
					}
					if h.Data()[0] != byte(pid) {
						t.Errorf("page %d corrupted: first byte %x", pid, h.Data()[0])
						h.Release()
						return
					}
					h.Release()
				}
			}
		}(w)
	}
	wg.Wait()
	if err := pool.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
	// After flushing, the persisted images must carry the stable first
	// byte as well.
	for pid := uint64(0); pid < pages; pid++ {
		if io.pages[pid][0] != byte(pid) {
			t.Fatalf("persisted page %d corrupted", pid)
		}
	}
	s := pool.Stats()
	if s.Hits+s.Misses == 0 {
		t.Fatalf("no pool traffic recorded: %+v", s)
	}
}

// TestMoreWorkersThanFrames runs more concurrent fetchers than one shard
// has frames: transient all-pinned states must resolve via the retry
// path instead of surfacing ErrNoFrames while pins are short-lived.
func TestMoreWorkersThanFrames(t *testing.T) {
	io := newMemIO(64)
	const pages = 16
	for pid := uint64(0); pid < pages; pid++ {
		io.seed(pid, byte(pid))
	}
	pool, err := NewSharded(io, 4, 1)
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				pid := uint64((w*31 + i) % pages)
				h, err := pool.Fetch(pid)
				if err != nil {
					t.Errorf("Fetch %d: %v", pid, err)
					return
				}
				if h.Data()[0] != byte(pid) {
					t.Errorf("page %d wrong content", pid)
				}
				h.Release()
			}
		}(w)
	}
	wg.Wait()
}

// TestConcurrentFlushDuringWrites interleaves FlushAll with writers to
// exercise the flush path's pin+latch protocol (run with -race).
func TestConcurrentFlushDuringWrites(t *testing.T) {
	io := newMemIO(64)
	const pages = 16
	for pid := uint64(0); pid < pages; pid++ {
		io.seed(pid, byte(pid))
	}
	pool, _ := NewSharded(io, 16, 4)
	stop := make(chan struct{})
	flusherDone := make(chan struct{})
	go func() {
		defer close(flusherDone)
		for {
			select {
			case <-stop:
				return
			default:
				if err := pool.FlushAll(); err != nil {
					t.Errorf("FlushAll: %v", err)
					return
				}
			}
		}
	}()
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 300; i++ {
				pid := uint64((w + i) % pages)
				h, err := pool.Fetch(pid)
				if err != nil {
					t.Errorf("Fetch: %v", err)
					return
				}
				h.Data()[2] = byte(i)
				h.MarkDirty()
				h.Release()
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	<-flusherDone
}
