// Package buffer implements the database buffer pool.
//
// The pool caches fixed-size database pages, pins them for access, and
// evicts victims with a clock (second-chance) policy. To scale with
// concurrent traffic the pool is partitioned into independently-latched
// shards: pages are hashed by page identifier onto a shard, each shard has
// its own frame array, hash table, clock hand and statistics, so readers
// and writers operating on different pages proceed in parallel. Within a
// shard, every frame additionally carries a read/write latch that
// serialises access to the page image itself: Fetch returns the page
// exclusively latched, FetchShared allows any number of concurrent
// readers.
//
// The pool's interaction with In-Place Appends is deliberately thin,
// exactly as the paper argues: the buffer always holds the up-to-date page
// image and all updates happen in place as usual; the only addition is
// that every frame carries a core.Tracker fed by the page layer, and that
// dirty evictions hand both the page image and the tracker to the storage
// manager, which decides between an in-place append and a traditional
// out-of-place write.
package buffer

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"ipa/internal/core"
)

// Errors returned by the pool.
var (
	// ErrNoFrames is returned when every frame of the page's shard stays
	// pinned for longer than the retry budget and no victim can be
	// evicted.
	ErrNoFrames = errors.New("buffer: all frames pinned")
	// ErrNotCached is returned by FlushPage for pages not in the pool.
	ErrNotCached = errors.New("buffer: page not cached")
)

// Pins are held only for the duration of one page operation, so a shard
// whose frames are all pinned usually frees one within microseconds.
// Fetch and Create therefore retry briefly before surfacing ErrNoFrames —
// without this, sharding would turn "more concurrent operations than
// frames in one shard" into a hard error even while other shards sit
// idle. The budget is generous enough for transient pile-ups and still
// bounded so leaked handles fail loudly.
const (
	victimRetries    = 200
	victimSpinPhase  = 16 // attempts that just yield before sleeping
	victimRetrySleep = 100 * time.Microsecond
)

// victimBackoff waits before the attempt-th retry.
func victimBackoff(attempt int) {
	if attempt < victimSpinPhase {
		runtime.Gosched()
	} else {
		time.Sleep(victimRetrySleep)
	}
}

// PageIO is implemented by the storage manager. LoadPage fills buf with the
// up-to-date page image (delta records already applied) and returns the
// change tracker for the new buffer residency. StorePage persists a dirty
// page; it must reset the tracker for the page's next residency before
// returning. Implementations must be safe for concurrent use: different
// shards issue loads and stores in parallel.
type PageIO interface {
	PageSize() int
	LoadPage(pid uint64, buf []byte) (*core.Tracker, error)
	StorePage(pid uint64, buf []byte, t *core.Tracker) error
}

// Stats counts buffer pool events, aggregated over all shards.
type Stats struct {
	Hits           uint64
	Misses         uint64
	Evictions      uint64
	DirtyEvictions uint64
	Flushes        uint64
}

func (s *Stats) add(o Stats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.DirtyEvictions += o.DirtyEvictions
	s.Flushes += o.Flushes
}

type frame struct {
	// latch serialises access to data and tracker. The invariant tying it
	// to the shard state: a goroutine holds or waits on the latch only
	// while it holds a pin, so a frame with pin == 0 has a free latch and
	// may be evicted or reused under the shard mutex alone.
	latch   sync.RWMutex
	pid     uint64
	data    []byte
	tracker *core.Tracker
	pin     int
	dirty   bool
	ref     bool
	valid   bool
	// recLSN is the log sequence number stamped when the frame last went
	// from clean to dirty: the oldest log record whose effects may only
	// exist in this frame. Fuzzy checkpoints flush dirty pages in recLSN
	// order so the WAL truncation cut can advance past the oldest one.
	recLSN uint64
}

// shard is one independently-latched partition of the pool.
type shard struct {
	mu     sync.Mutex
	io     PageIO
	frames []frame
	table  map[uint64]int
	hand   int
	stats  Stats
	lsn    func() uint64 // source of recLSN stamps (nil = always 0)
}

// Pool is a fixed-capacity page cache partitioned into shards.
type Pool struct {
	io     PageIO
	shards []*shard
}

// Sharding defaults: shards are a power of two so the pid hash reduces to a
// mask, each shard keeps at least minFramesPerShard frames so small pools
// (unit tests, tiny devices) degenerate to a single shard with exactly the
// classic clock semantics.
const (
	maxShards         = 16
	minFramesPerShard = 8
)

// defaultShards returns the shard count used by New for a pool of nframes.
func defaultShards(nframes int) int {
	n := nframes / minFramesPerShard
	if n > maxShards {
		n = maxShards
	}
	s := 1
	for s*2 <= n {
		s *= 2
	}
	return s
}

// New creates a pool with nframes frames spread over an automatically
// chosen number of shards.
func New(io PageIO, nframes int) (*Pool, error) {
	return NewSharded(io, nframes, defaultShards(nframes))
}

// NewSharded creates a pool with nframes frames spread over nshards
// independently-latched shards.
func NewSharded(io PageIO, nframes, nshards int) (*Pool, error) {
	if nframes <= 0 {
		return nil, fmt.Errorf("buffer: pool needs at least one frame, got %d", nframes)
	}
	if nshards <= 0 || nshards > nframes {
		return nil, fmt.Errorf("buffer: shard count %d invalid for %d frames", nshards, nframes)
	}
	p := &Pool{io: io, shards: make([]*shard, nshards)}
	size := io.PageSize()
	base, rem := nframes/nshards, nframes%nshards
	for i := range p.shards {
		n := base
		if i < rem {
			n++
		}
		s := &shard{
			io:     io,
			frames: make([]frame, n),
			table:  make(map[uint64]int, n),
		}
		for j := range s.frames {
			s.frames[j].data = make([]byte, size)
		}
		p.shards[i] = s
	}
	return p, nil
}

// shardFor maps a page identifier onto its shard. Page identifiers are
// allocated sequentially, so a plain modulo spreads neighbouring pages
// across shards and scans fan out over all partitions.
func (p *Pool) shardFor(pid uint64) *shard {
	return p.shards[pid%uint64(len(p.shards))]
}

// Capacity returns the total number of frames.
func (p *Pool) Capacity() int {
	n := 0
	for _, s := range p.shards {
		n += len(s.frames)
	}
	return n
}

// Shards returns the number of independently-latched partitions.
func (p *Pool) Shards() int { return len(p.shards) }

// Stats returns a snapshot of the pool counters summed over all shards.
func (p *Pool) Stats() Stats {
	var out Stats
	for _, s := range p.shards {
		s.mu.Lock()
		out.add(s.stats)
		s.mu.Unlock()
	}
	return out
}

// Handle is a pinned, latched reference to a buffered page. It must be
// released exactly once. Handles from Fetch and Create hold the frame
// latch exclusively; handles from FetchShared hold it shared and must not
// modify the page.
type Handle struct {
	shard  *shard
	idx    int
	pid    uint64
	shared bool
}

// PID returns the page identifier.
func (h *Handle) PID() uint64 { return h.pid }

// Data returns the buffered page image. It remains valid until Release.
func (h *Handle) Data() []byte { return h.shard.frames[h.idx].data }

// Tracker returns the change tracker of the current residency.
func (h *Handle) Tracker() *core.Tracker { return h.shard.frames[h.idx].tracker }

// MarkDirty flags the page as modified. It requires an exclusive handle.
// The first MarkDirty of a residency stamps the frame's recLSN from the
// pool's LSN source (see SetLSNSource).
func (h *Handle) MarkDirty() {
	s := h.shard
	s.mu.Lock()
	f := &s.frames[h.idx]
	if !f.dirty {
		f.dirty = true
		f.recLSN = s.stampLocked()
	}
	s.mu.Unlock()
}

// stampLocked returns the current recLSN stamp. The caller holds the
// shard mutex.
func (s *shard) stampLocked() uint64 {
	if s.lsn == nil {
		return 0
	}
	return s.lsn()
}

// Release drops the frame latch and unpins the page. The latch is released
// before the pin so that, under the shard mutex, pin == 0 implies the
// latch is free.
func (h *Handle) Release() {
	f := &h.shard.frames[h.idx]
	if h.shared {
		f.latch.RUnlock()
	} else {
		f.latch.Unlock()
	}
	h.shard.mu.Lock()
	if f.pin > 0 {
		f.pin--
	}
	h.shard.mu.Unlock()
}

// Fetch pins the page with identifier pid, loading it through the PageIO if
// necessary, and returns it exclusively latched.
func (p *Pool) Fetch(pid uint64) (*Handle, error) { return p.fetch(pid, false) }

// FetchShared is Fetch with a shared latch: any number of readers may hold
// the same page concurrently. The returned handle must not be used to
// modify the page.
func (p *Pool) FetchShared(pid uint64) (*Handle, error) { return p.fetch(pid, true) }

// claimFrame acquires the shard mutex and claims a frame for a new
// residency, backing off while every frame is transiently pinned. Each
// attempt first re-runs lookup (under the mutex): if it reports the page
// is already cached, claimFrame stops with hit == true. On success (hit
// or claimed victim index) the shard mutex is HELD; on error it is
// released.
func (s *shard) claimFrame(lookup func() (int, bool)) (idx int, hit bool, err error) {
	s.mu.Lock()
	for attempt := 0; ; attempt++ {
		if i, ok := lookup(); ok {
			return i, true, nil
		}
		i, err := s.victimLocked()
		if err == nil {
			return i, false, nil
		}
		s.mu.Unlock()
		if !errors.Is(err, ErrNoFrames) || attempt >= victimRetries {
			return 0, false, err
		}
		victimBackoff(attempt)
		s.mu.Lock()
	}
}

func (p *Pool) fetch(pid uint64, shared bool) (*Handle, error) {
	s := p.shardFor(pid)
	idx, hit, err := s.claimFrame(func() (int, bool) {
		i, ok := s.table[pid]
		return i, ok
	})
	if err != nil {
		return nil, err
	}
	if hit {
		f := &s.frames[idx]
		f.pin++
		f.ref = true
		s.stats.Hits++
		s.mu.Unlock()
		// The pin keeps the frame resident; block on the latch outside
		// the shard mutex so unrelated pages of the shard stay
		// accessible.
		lockLatch(f, shared)
		return &Handle{shard: s, idx: idx, pid: pid, shared: shared}, nil
	}
	s.stats.Misses++
	f := &s.frames[idx]
	f.pid = pid
	f.pin = 1
	f.ref = true
	f.dirty = false
	f.recLSN = 0
	f.valid = true
	f.tracker = nil
	s.table[pid] = idx
	// The load happens under the shard mutex: it keeps the miss-then-load
	// path atomic with respect to concurrent fetches of the same page, and
	// only serialises this shard — misses on other shards proceed in
	// parallel.
	tracker, err := s.io.LoadPage(pid, f.data)
	if err != nil {
		delete(s.table, pid)
		f.valid = false
		f.pin = 0
		s.mu.Unlock()
		return nil, err
	}
	f.tracker = tracker
	s.mu.Unlock()
	lockLatch(f, shared)
	return &Handle{shard: s, idx: idx, pid: pid, shared: shared}, nil
}

func lockLatch(f *frame, shared bool) {
	if shared {
		f.latch.RLock()
	} else {
		f.latch.Lock()
	}
}

// Create pins a frame for a brand-new page that does not exist on storage
// yet. init formats the frame contents and returns the page's tracker
// (typically one marked out-of-place, since the first write of a new page
// cannot be an append). The handle is exclusively latched.
func (p *Pool) Create(pid uint64, init func(buf []byte) (*core.Tracker, error)) (*Handle, error) {
	s := p.shardFor(pid)
	idx, hit, err := s.claimFrame(func() (int, bool) {
		i, ok := s.table[pid]
		return i, ok
	})
	if err != nil {
		return nil, err
	}
	if hit {
		s.mu.Unlock()
		return nil, fmt.Errorf("buffer: page %d already cached", pid)
	}
	f := &s.frames[idx]
	f.pid = pid
	f.pin = 1
	f.ref = true
	f.dirty = true
	f.recLSN = s.stampLocked()
	f.valid = true
	f.tracker = nil
	s.table[pid] = idx
	tracker, err := init(f.data)
	if err != nil {
		delete(s.table, pid)
		f.valid = false
		f.pin = 0
		f.dirty = false
		s.mu.Unlock()
		return nil, err
	}
	f.tracker = tracker
	s.mu.Unlock()
	lockLatch(f, false)
	return &Handle{shard: s, idx: idx, pid: pid}, nil
}

// victimLocked returns the index of a free frame, evicting a victim with
// the clock policy if necessary. The caller holds the shard mutex.
func (s *shard) victimLocked() (int, error) {
	// Prefer an unused frame.
	for i := range s.frames {
		if !s.frames[i].valid {
			return i, nil
		}
	}
	// Clock sweep: two full passes guarantee a victim if one exists.
	for sweep := 0; sweep < 2*len(s.frames); sweep++ {
		idx := s.hand
		s.hand = (s.hand + 1) % len(s.frames)
		f := &s.frames[idx]
		if f.pin > 0 {
			continue
		}
		if f.ref {
			f.ref = false
			continue
		}
		if err := s.evictLocked(idx); err != nil {
			return 0, err
		}
		return idx, nil
	}
	return 0, ErrNoFrames
}

// evictLocked writes back a dirty victim and removes it from the table.
// The caller holds the shard mutex; the victim is unpinned, so its latch
// is free and nobody can observe the page while it is written back.
func (s *shard) evictLocked(idx int) error {
	f := &s.frames[idx]
	s.stats.Evictions++
	if f.dirty {
		s.stats.DirtyEvictions++
		if err := s.io.StorePage(f.pid, f.data, f.tracker); err != nil {
			return fmt.Errorf("buffer: evicting page %d: %w", f.pid, err)
		}
	}
	delete(s.table, f.pid)
	f.valid = false
	f.dirty = false
	f.recLSN = 0
	f.tracker = nil
	return nil
}

// FlushPage writes a cached page back to storage if it is dirty. The page
// stays cached.
func (p *Pool) FlushPage(pid uint64) error {
	s := p.shardFor(pid)
	s.mu.Lock()
	idx, ok := s.table[pid]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrNotCached, pid)
	}
	s.frames[idx].pin++
	s.mu.Unlock()
	return s.flushFrame(idx)
}

// flushFrame writes one pinned frame back if it is dirty, then unpins it.
// The caller must have incremented the frame's pin count; flushFrame takes
// the frame latch so the write-back never observes a half-applied update.
func (s *shard) flushFrame(idx int) error {
	f := &s.frames[idx]
	f.latch.Lock()
	s.mu.Lock()
	dirty := f.valid && f.dirty
	s.mu.Unlock()
	var err error
	if dirty {
		// The latch keeps the page image stable; the shard mutex is not
		// held across the store so unrelated pages stay accessible.
		err = s.io.StorePage(f.pid, f.data, f.tracker)
	}
	s.mu.Lock()
	if err == nil && dirty {
		f.dirty = false
		f.recLSN = 0
		s.stats.Flushes++
	}
	s.mu.Unlock()
	// Mirror Handle.Release: drop the latch before the pin so that, under
	// the shard mutex, pin == 0 implies the latch is free.
	f.latch.Unlock()
	s.mu.Lock()
	if f.pin > 0 {
		f.pin--
	}
	s.mu.Unlock()
	return err
}

// FlushAll writes every dirty cached page back to storage.
func (p *Pool) FlushAll() error {
	for _, s := range p.shards {
		for idx := range s.frames {
			s.mu.Lock()
			if !s.frames[idx].valid {
				s.mu.Unlock()
				continue
			}
			s.frames[idx].pin++
			s.mu.Unlock()
			if err := s.flushFrame(idx); err != nil {
				return err
			}
		}
	}
	return nil
}

// SetLSNSource installs fn as the recLSN stamp source: it is sampled
// (under the shard mutex) whenever a frame transitions from clean to
// dirty, typically wired to the WAL's next-LSN counter. It must be set
// before the pool is shared between goroutines.
func (p *Pool) SetLSNSource(fn func() uint64) {
	for _, s := range p.shards {
		s.lsn = fn
	}
}

// DirtySnapshot returns the identifiers of all currently dirty pages,
// ordered by recLSN ascending (oldest first). It is the fuzzy
// checkpoint's work list: flushing in this order retires the oldest log
// dependencies first. The snapshot is advisory — pages may be dirtied or
// cleaned concurrently — which is exactly what makes the checkpoint
// fuzzy.
func (p *Pool) DirtySnapshot() []uint64 {
	type entry struct {
		pid    uint64
		recLSN uint64
	}
	var dirty []entry
	for _, s := range p.shards {
		s.mu.Lock()
		for i := range s.frames {
			f := &s.frames[i]
			if f.valid && f.dirty {
				dirty = append(dirty, entry{pid: f.pid, recLSN: f.recLSN})
			}
		}
		s.mu.Unlock()
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i].recLSN < dirty[j].recLSN })
	out := make([]uint64, len(dirty))
	for i, e := range dirty {
		out[i] = e.pid
	}
	return out
}

// Cached reports whether pid currently resides in the pool.
func (p *Pool) Cached(pid uint64) bool {
	s := p.shardFor(pid)
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.table[pid]
	return ok
}
