// Package buffer implements the database buffer pool.
//
// The pool caches fixed-size database pages, pins them for access, and
// evicts victims with a clock (second-chance) policy. Its interaction with
// In-Place Appends is deliberately thin, exactly as the paper argues: the
// buffer always holds the up-to-date page image and all updates happen
// in place as usual; the only addition is that every frame carries a
// core.Tracker fed by the page layer, and that dirty evictions hand both
// the page image and the tracker to the storage manager, which decides
// between an in-place append and a traditional out-of-place write.
package buffer

import (
	"errors"
	"fmt"
	"sync"

	"ipa/internal/core"
)

// Errors returned by the pool.
var (
	// ErrNoFrames is returned when every frame is pinned and no victim can
	// be evicted.
	ErrNoFrames = errors.New("buffer: all frames pinned")
	// ErrNotCached is returned by FlushPage for pages not in the pool.
	ErrNotCached = errors.New("buffer: page not cached")
)

// PageIO is implemented by the storage manager. LoadPage fills buf with the
// up-to-date page image (delta records already applied) and returns the
// change tracker for the new buffer residency. StorePage persists a dirty
// page; it must reset the tracker for the page's next residency before
// returning.
type PageIO interface {
	PageSize() int
	LoadPage(pid uint64, buf []byte) (*core.Tracker, error)
	StorePage(pid uint64, buf []byte, t *core.Tracker) error
}

// Stats counts buffer pool events.
type Stats struct {
	Hits           uint64
	Misses         uint64
	Evictions      uint64
	DirtyEvictions uint64
	Flushes        uint64
}

type frame struct {
	pid     uint64
	data    []byte
	tracker *core.Tracker
	pin     int
	dirty   bool
	ref     bool
	valid   bool
}

// Pool is a fixed-capacity page cache.
type Pool struct {
	mu     sync.Mutex
	io     PageIO
	frames []frame
	table  map[uint64]int
	hand   int
	stats  Stats
}

// New creates a pool with nframes frames.
func New(io PageIO, nframes int) (*Pool, error) {
	if nframes <= 0 {
		return nil, fmt.Errorf("buffer: pool needs at least one frame, got %d", nframes)
	}
	p := &Pool{
		io:     io,
		frames: make([]frame, nframes),
		table:  make(map[uint64]int, nframes),
	}
	size := io.PageSize()
	for i := range p.frames {
		p.frames[i].data = make([]byte, size)
	}
	return p, nil
}

// Capacity returns the number of frames.
func (p *Pool) Capacity() int { return len(p.frames) }

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Handle is a pinned reference to a buffered page. It must be released
// exactly once.
type Handle struct {
	pool *Pool
	idx  int
	pid  uint64
}

// PID returns the page identifier.
func (h *Handle) PID() uint64 { return h.pid }

// Data returns the buffered page image. It remains valid until Release.
func (h *Handle) Data() []byte { return h.pool.frames[h.idx].data }

// Tracker returns the change tracker of the current residency.
func (h *Handle) Tracker() *core.Tracker { return h.pool.frames[h.idx].tracker }

// MarkDirty flags the page as modified.
func (h *Handle) MarkDirty() {
	h.pool.mu.Lock()
	h.pool.frames[h.idx].dirty = true
	h.pool.mu.Unlock()
}

// Release unpins the page.
func (h *Handle) Release() {
	h.pool.mu.Lock()
	f := &h.pool.frames[h.idx]
	if f.pin > 0 {
		f.pin--
	}
	h.pool.mu.Unlock()
}

// Fetch pins the page with identifier pid, loading it through the PageIO if
// necessary.
func (p *Pool) Fetch(pid uint64) (*Handle, error) {
	p.mu.Lock()
	if idx, ok := p.table[pid]; ok {
		f := &p.frames[idx]
		f.pin++
		f.ref = true
		p.stats.Hits++
		p.mu.Unlock()
		return &Handle{pool: p, idx: idx, pid: pid}, nil
	}
	p.stats.Misses++
	idx, err := p.victimLocked()
	if err != nil {
		p.mu.Unlock()
		return nil, err
	}
	f := &p.frames[idx]
	f.pid = pid
	f.pin = 1
	f.ref = true
	f.dirty = false
	f.valid = true
	f.tracker = nil
	p.table[pid] = idx
	// The load happens under the pool lock. The pool is not a concurrency
	// hot spot in the simulation, and holding the lock keeps the
	// miss-then-load path atomic with respect to concurrent fetches.
	tracker, err := p.io.LoadPage(pid, f.data)
	if err != nil {
		delete(p.table, pid)
		f.valid = false
		f.pin = 0
		p.mu.Unlock()
		return nil, err
	}
	f.tracker = tracker
	p.mu.Unlock()
	return &Handle{pool: p, idx: idx, pid: pid}, nil
}

// Create pins a frame for a brand-new page that does not exist on storage
// yet. init formats the frame contents and returns the page's tracker
// (typically one marked out-of-place, since the first write of a new page
// cannot be an append).
func (p *Pool) Create(pid uint64, init func(buf []byte) (*core.Tracker, error)) (*Handle, error) {
	p.mu.Lock()
	if _, ok := p.table[pid]; ok {
		p.mu.Unlock()
		return nil, fmt.Errorf("buffer: page %d already cached", pid)
	}
	idx, err := p.victimLocked()
	if err != nil {
		p.mu.Unlock()
		return nil, err
	}
	f := &p.frames[idx]
	f.pid = pid
	f.pin = 1
	f.ref = true
	f.dirty = true
	f.valid = true
	f.tracker = nil
	p.table[pid] = idx
	tracker, err := init(f.data)
	if err != nil {
		delete(p.table, pid)
		f.valid = false
		f.pin = 0
		f.dirty = false
		p.mu.Unlock()
		return nil, err
	}
	f.tracker = tracker
	p.mu.Unlock()
	return &Handle{pool: p, idx: idx, pid: pid}, nil
}

// victimLocked returns the index of a free frame, evicting a victim with
// the clock policy if necessary. The caller holds the pool lock.
func (p *Pool) victimLocked() (int, error) {
	// Prefer an unused frame.
	for i := range p.frames {
		if !p.frames[i].valid {
			return i, nil
		}
	}
	// Clock sweep: two full passes guarantee a victim if one exists.
	for sweep := 0; sweep < 2*len(p.frames); sweep++ {
		idx := p.hand
		p.hand = (p.hand + 1) % len(p.frames)
		f := &p.frames[idx]
		if f.pin > 0 {
			continue
		}
		if f.ref {
			f.ref = false
			continue
		}
		if err := p.evictLocked(idx); err != nil {
			return 0, err
		}
		return idx, nil
	}
	return 0, ErrNoFrames
}

// evictLocked writes back a dirty victim and removes it from the table.
func (p *Pool) evictLocked(idx int) error {
	f := &p.frames[idx]
	p.stats.Evictions++
	if f.dirty {
		p.stats.DirtyEvictions++
		if err := p.io.StorePage(f.pid, f.data, f.tracker); err != nil {
			return fmt.Errorf("buffer: evicting page %d: %w", f.pid, err)
		}
	}
	delete(p.table, f.pid)
	f.valid = false
	f.dirty = false
	f.tracker = nil
	return nil
}

// FlushPage writes a cached page back to storage if it is dirty. The page
// stays cached.
func (p *Pool) FlushPage(pid uint64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	idx, ok := p.table[pid]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNotCached, pid)
	}
	return p.flushFrameLocked(idx)
}

func (p *Pool) flushFrameLocked(idx int) error {
	f := &p.frames[idx]
	if !f.dirty {
		return nil
	}
	if err := p.io.StorePage(f.pid, f.data, f.tracker); err != nil {
		return err
	}
	f.dirty = false
	p.stats.Flushes++
	return nil
}

// FlushAll writes every dirty cached page back to storage.
func (p *Pool) FlushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.frames {
		if !p.frames[i].valid {
			continue
		}
		if err := p.flushFrameLocked(i); err != nil {
			return err
		}
	}
	return nil
}

// Cached reports whether pid currently resides in the pool.
func (p *Pool) Cached(pid uint64) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.table[pid]
	return ok
}
