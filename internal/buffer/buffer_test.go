package buffer

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"ipa/internal/core"
)

// memIO is an in-memory PageIO used to test the pool in isolation.
type memIO struct {
	mu       sync.Mutex
	pageSize int
	pages    map[uint64][]byte
	loads    int
	stores   int
	failLoad bool
}

func newMemIO(pageSize int) *memIO {
	return &memIO{pageSize: pageSize, pages: make(map[uint64][]byte)}
}

func (m *memIO) PageSize() int { return m.pageSize }

func (m *memIO) LoadPage(pid uint64, buf []byte) (*core.Tracker, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failLoad {
		return nil, errors.New("injected load failure")
	}
	m.loads++
	img, ok := m.pages[pid]
	if !ok {
		return nil, fmt.Errorf("page %d missing", pid)
	}
	copy(buf, img)
	return core.NewTracker(core.Scheme{N: 2, M: 4}, 4, m.pageSize, 0), nil
}

func (m *memIO) StorePage(pid uint64, buf []byte, t *core.Tracker) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stores++
	img := make([]byte, len(buf))
	copy(img, buf)
	m.pages[pid] = img
	if t != nil {
		t.Reset(0)
	}
	return nil
}

func (m *memIO) seed(pid uint64, val byte) {
	img := make([]byte, m.pageSize)
	for i := range img {
		img[i] = val
	}
	m.pages[pid] = img
}

func TestFetchHitAndMiss(t *testing.T) {
	io := newMemIO(256)
	io.seed(1, 0xAA)
	pool, err := New(io, 4)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	h, err := pool.Fetch(1)
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if h.Data()[0] != 0xAA {
		t.Fatalf("loaded data wrong")
	}
	h.Release()
	h2, err := pool.Fetch(1)
	if err != nil {
		t.Fatalf("Fetch again: %v", err)
	}
	h2.Release()
	s := pool.Stats()
	if s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("stats %+v", s)
	}
	if io.loads != 1 {
		t.Fatalf("page loaded %d times", io.loads)
	}
	if !pool.Cached(1) || pool.Cached(2) {
		t.Fatalf("Cached() wrong")
	}
}

func TestEvictionWritesDirtyPages(t *testing.T) {
	io := newMemIO(128)
	for pid := uint64(0); pid < 10; pid++ {
		io.seed(pid, byte(pid))
	}
	pool, err := New(io, 3)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Dirty page 0, then touch enough other pages to force its eviction.
	h, err := pool.Fetch(0)
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	h.Data()[5] = 0x99
	h.Tracker().RecordChange(5, 0, 0x99)
	h.MarkDirty()
	h.Release()
	for pid := uint64(1); pid < 8; pid++ {
		hh, err := pool.Fetch(pid)
		if err != nil {
			t.Fatalf("Fetch %d: %v", pid, err)
		}
		hh.Release()
	}
	if pool.Cached(0) {
		t.Fatalf("page 0 should have been evicted")
	}
	if io.pages[0][5] != 0x99 {
		t.Fatalf("dirty eviction did not persist the change")
	}
	s := pool.Stats()
	if s.DirtyEvictions == 0 || s.Evictions == 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestPinnedPagesAreNotEvicted(t *testing.T) {
	io := newMemIO(64)
	for pid := uint64(0); pid < 4; pid++ {
		io.seed(pid, byte(pid))
	}
	pool, _ := New(io, 2)
	h0, err := pool.Fetch(0)
	if err != nil {
		t.Fatalf("Fetch 0: %v", err)
	}
	h1, err := pool.Fetch(1)
	if err != nil {
		t.Fatalf("Fetch 1: %v", err)
	}
	// Both frames pinned: the next fetch must fail.
	if _, err := pool.Fetch(2); !errors.Is(err, ErrNoFrames) {
		t.Fatalf("expected ErrNoFrames, got %v", err)
	}
	h0.Release()
	if _, err := pool.Fetch(2); err != nil {
		t.Fatalf("fetch after release: %v", err)
	}
	h1.Release()
}

func TestCreateNewPage(t *testing.T) {
	io := newMemIO(64)
	pool, _ := New(io, 2)
	h, err := pool.Create(42, func(buf []byte) (*core.Tracker, error) {
		for i := range buf {
			buf[i] = 0x7F
		}
		tr := core.NewTracker(core.Scheme{}, 4, len(buf), 0)
		return tr, nil
	})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	h.Release()
	if _, err := pool.Create(42, nil); err == nil {
		t.Fatalf("creating a cached page twice must fail")
	}
	// Force eviction; the created page must be stored.
	io.seed(1, 1)
	io.seed(2, 2)
	for pid := uint64(1); pid <= 2; pid++ {
		hh, err := pool.Fetch(pid)
		if err != nil {
			t.Fatalf("Fetch: %v", err)
		}
		hh.Release()
	}
	if img, ok := io.pages[42]; !ok || img[0] != 0x7F {
		t.Fatalf("created page was not persisted on eviction")
	}
}

func TestFlushAllAndFlushPage(t *testing.T) {
	io := newMemIO(64)
	io.seed(1, 1)
	io.seed(2, 2)
	pool, _ := New(io, 4)
	for pid := uint64(1); pid <= 2; pid++ {
		h, err := pool.Fetch(pid)
		if err != nil {
			t.Fatalf("Fetch: %v", err)
		}
		h.Data()[0] = 0xEE
		h.MarkDirty()
		h.Release()
	}
	if err := pool.FlushPage(1); err != nil {
		t.Fatalf("FlushPage: %v", err)
	}
	if io.pages[1][0] != 0xEE {
		t.Fatalf("FlushPage did not persist")
	}
	if err := pool.FlushPage(99); !errors.Is(err, ErrNotCached) {
		t.Fatalf("expected ErrNotCached, got %v", err)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
	if io.pages[2][0] != 0xEE {
		t.Fatalf("FlushAll did not persist")
	}
	// Flushing a clean pool is a no-op.
	stores := io.stores
	if err := pool.FlushAll(); err != nil {
		t.Fatalf("FlushAll (clean): %v", err)
	}
	if io.stores != stores {
		t.Fatalf("clean flush should not store pages")
	}
}

func TestLoadFailureLeavesPoolConsistent(t *testing.T) {
	io := newMemIO(64)
	pool, _ := New(io, 2)
	io.failLoad = true
	if _, err := pool.Fetch(5); err == nil {
		t.Fatalf("expected load failure")
	}
	io.failLoad = false
	io.seed(5, 5)
	h, err := pool.Fetch(5)
	if err != nil {
		t.Fatalf("Fetch after failed load: %v", err)
	}
	h.Release()
}

func TestNewValidation(t *testing.T) {
	if _, err := New(newMemIO(64), 0); err == nil {
		t.Fatalf("zero frames must be rejected")
	}
}

func TestCapacity(t *testing.T) {
	pool, _ := New(newMemIO(64), 7)
	if pool.Capacity() != 7 {
		t.Fatalf("Capacity = %d", pool.Capacity())
	}
}
