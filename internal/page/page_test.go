package page

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

// recorder captures change notifications for assertions.
type recorder struct {
	writes []struct {
		off      int
		old, new []byte
	}
	metaChanges int
}

func (r *recorder) RecordWrite(offset int, old, new []byte) {
	r.writes = append(r.writes, struct {
		off      int
		old, new []byte
	}{offset, append([]byte(nil), old...), append([]byte(nil), new...)})
}

func (r *recorder) RecordMetaChange() { r.metaChanges++ }

func newTestPage(t *testing.T, size, deltaArea int) *Page {
	t.Helper()
	buf := make([]byte, size)
	p, err := Init(buf, 42, 7, deltaArea)
	if err != nil {
		t.Fatalf("Init: %v", err)
	}
	return p
}

func TestInitAndWrap(t *testing.T) {
	buf := make([]byte, 4096)
	p, err := Init(buf, 12345, 9, 122)
	if err != nil {
		t.Fatalf("Init: %v", err)
	}
	if p.ID() != 12345 || p.ObjectID() != 9 || p.DeltaAreaSize() != 122 {
		t.Fatalf("header fields wrong: id=%d obj=%d delta=%d", p.ID(), p.ObjectID(), p.DeltaAreaSize())
	}
	if p.SlotCount() != 0 || p.LSN() != 0 {
		t.Fatalf("fresh page not empty")
	}
	w, err := Wrap(buf)
	if err != nil {
		t.Fatalf("Wrap: %v", err)
	}
	if w.ID() != 12345 {
		t.Fatalf("Wrap lost the header")
	}
	if _, err := Wrap(make([]byte, 4096)); !errors.Is(err, ErrNotInitialized) {
		t.Fatalf("Wrap of zero buffer must fail, got %v", err)
	}
	if _, err := Wrap(make([]byte, 8)); !errors.Is(err, ErrTooSmall) {
		t.Fatalf("Wrap of tiny buffer must fail, got %v", err)
	}
	if _, err := Init(make([]byte, 32), 1, 1, 0); !errors.Is(err, ErrTooSmall) {
		t.Fatalf("Init of tiny buffer must fail, got %v", err)
	}
}

func TestLayoutBoundaries(t *testing.T) {
	p := newTestPage(t, 4096, 100)
	if p.Size() != 4096 {
		t.Fatalf("Size = %d", p.Size())
	}
	if p.DeltaAreaStart() != 4096-FooterSize-100 {
		t.Fatalf("DeltaAreaStart = %d", p.DeltaAreaStart())
	}
	if p.BodyEnd() != p.DeltaAreaStart() {
		t.Fatalf("BodyEnd must equal DeltaAreaStart")
	}
	if len(p.DeltaArea()) != 100 {
		t.Fatalf("DeltaArea length = %d", len(p.DeltaArea()))
	}
}

func TestInsertAndReadTuples(t *testing.T) {
	p := newTestPage(t, 2048, 0)
	var slots []int
	for i := 0; i < 10; i++ {
		tuple := bytes.Repeat([]byte{byte(i + 1)}, 50)
		slot, err := p.InsertTuple(tuple)
		if err != nil {
			t.Fatalf("InsertTuple %d: %v", i, err)
		}
		slots = append(slots, slot)
	}
	if p.SlotCount() != 10 {
		t.Fatalf("SlotCount = %d", p.SlotCount())
	}
	for i, s := range slots {
		got, err := p.Tuple(s)
		if err != nil {
			t.Fatalf("Tuple %d: %v", s, err)
		}
		if !bytes.Equal(got, bytes.Repeat([]byte{byte(i + 1)}, 50)) {
			t.Fatalf("tuple %d content wrong", s)
		}
		if n, err := p.TupleLen(s); err != nil || n != 50 {
			t.Fatalf("TupleLen = %d, %v", n, err)
		}
	}
}

func TestPageFull(t *testing.T) {
	p := newTestPage(t, 512, 0)
	tuple := make([]byte, 100)
	inserted := 0
	for {
		if _, err := p.InsertTuple(tuple); err != nil {
			if !errors.Is(err, ErrPageFull) {
				t.Fatalf("unexpected error: %v", err)
			}
			break
		}
		inserted++
	}
	if inserted == 0 || inserted > 5 {
		t.Fatalf("unexpected number of tuples in a 512-byte page: %d", inserted)
	}
	if p.FreeSpace() >= 100+SlotSize {
		t.Fatalf("FreeSpace inconsistent with the failed insert")
	}
}

func TestUpdateTupleAt(t *testing.T) {
	p := newTestPage(t, 2048, 0)
	slot, err := p.InsertTuple(make([]byte, 64))
	if err != nil {
		t.Fatalf("InsertTuple: %v", err)
	}
	if err := p.UpdateTupleAt(slot, 10, []byte{1, 2, 3}); err != nil {
		t.Fatalf("UpdateTupleAt: %v", err)
	}
	got, _ := p.Tuple(slot)
	if got[10] != 1 || got[11] != 2 || got[12] != 3 {
		t.Fatalf("update not applied: %v", got[8:14])
	}
	if err := p.UpdateTupleAt(slot, 62, []byte{1, 2, 3}); !errors.Is(err, ErrBadUpdate) {
		t.Fatalf("out-of-bounds update not rejected: %v", err)
	}
	if err := p.UpdateTupleAt(99, 0, []byte{1}); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("bad slot not rejected: %v", err)
	}
	if err := p.UpdateTuple(slot, make([]byte, 64)); err != nil {
		t.Fatalf("whole-tuple update: %v", err)
	}
	if err := p.UpdateTuple(slot, make([]byte, 63)); !errors.Is(err, ErrBadUpdate) {
		t.Fatalf("size-changing update not rejected: %v", err)
	}
}

func TestDeleteTuple(t *testing.T) {
	p := newTestPage(t, 2048, 0)
	slot, _ := p.InsertTuple(make([]byte, 32))
	if err := p.DeleteTuple(slot); err != nil {
		t.Fatalf("DeleteTuple: %v", err)
	}
	if _, err := p.Tuple(slot); !errors.Is(err, ErrDeleted) {
		t.Fatalf("deleted tuple still readable: %v", err)
	}
	if err := p.DeleteTuple(slot); !errors.Is(err, ErrDeleted) {
		t.Fatalf("double delete not detected: %v", err)
	}
	deleted, err := p.Deleted(slot)
	if err != nil || !deleted {
		t.Fatalf("Deleted() wrong: %v %v", deleted, err)
	}
}

func TestChangeRecording(t *testing.T) {
	p := newTestPage(t, 2048, 64)
	rec := &recorder{}
	p.SetRecorder(rec)

	slot, err := p.InsertTuple(make([]byte, 40))
	if err != nil {
		t.Fatalf("InsertTuple: %v", err)
	}
	if len(rec.writes) == 0 || rec.metaChanges == 0 {
		t.Fatalf("insert must report body and metadata changes: %d writes, %d meta", len(rec.writes), rec.metaChanges)
	}
	before := len(rec.writes)
	if err := p.UpdateTupleAt(slot, 5, []byte{0xAA}); err != nil {
		t.Fatalf("UpdateTupleAt: %v", err)
	}
	if len(rec.writes) != before+1 {
		t.Fatalf("update must report exactly one write")
	}
	w := rec.writes[len(rec.writes)-1]
	if len(w.new) != 1 || w.new[0] != 0xAA {
		t.Fatalf("recorded write wrong: %+v", w)
	}
	metaBefore := rec.metaChanges
	p.SetLSN(77)
	if rec.metaChanges != metaBefore+1 {
		t.Fatalf("SetLSN must report a metadata change")
	}
	if p.LSN() != 77 {
		t.Fatalf("LSN = %d", p.LSN())
	}
}

func TestMetaRoundTrip(t *testing.T) {
	p := newTestPage(t, 2048, 64)
	p.SetLSN(123)
	p.SetFlags(FlagOutOfPlace)
	meta := p.Meta()
	if len(meta) != MetaSize {
		t.Fatalf("Meta length = %d", len(meta))
	}
	// Build a second page and install the metadata.
	q := newTestPage(t, 2048, 64)
	if err := q.ApplyMeta(meta); err != nil {
		t.Fatalf("ApplyMeta: %v", err)
	}
	if q.LSN() != 123 || q.Flags() != FlagOutOfPlace || q.ID() != 42 {
		t.Fatalf("metadata not installed: lsn=%d flags=%d id=%d", q.LSN(), q.Flags(), q.ID())
	}
	if err := q.ApplyMeta(meta[:10]); err == nil {
		t.Fatalf("short metadata must be rejected")
	}
	// ApplyMeta must not let corrupted metadata change the delta-area size.
	bad := append([]byte(nil), meta...)
	bad[offDeltaSize] = 0xFF
	bad[offDeltaSize+1] = 0xFF
	if err := q.ApplyMeta(bad); err != nil {
		t.Fatalf("ApplyMeta: %v", err)
	}
	if q.DeltaAreaSize() != 64 {
		t.Fatalf("delta area size must be preserved, got %d", q.DeltaAreaSize())
	}
}

func TestDeltaAreaHelpers(t *testing.T) {
	p := newTestPage(t, 1024, 32)
	p.ResetDeltaArea()
	for _, b := range p.DeltaArea() {
		if b != 0xFF {
			t.Fatalf("ResetDeltaArea must fill with 0xFF")
		}
	}
	p.ZeroDeltaArea()
	for _, b := range p.DeltaArea() {
		if b != 0 {
			t.Fatalf("ZeroDeltaArea must fill with zeroes")
		}
	}
}

// TestInsertReadProperty: tuples of arbitrary content survive insertion and
// retrieval unchanged, and never overlap the delta area or footer.
func TestInsertReadProperty(t *testing.T) {
	f := func(tuples [][]byte) bool {
		buf := make([]byte, 4096)
		p, err := Init(buf, 1, 1, 128)
		if err != nil {
			return false
		}
		var stored [][]byte
		for _, tup := range tuples {
			if len(tup) == 0 || len(tup) > 200 {
				continue
			}
			slot, err := p.InsertTuple(tup)
			if err != nil {
				if errors.Is(err, ErrPageFull) {
					break
				}
				return false
			}
			if slot != len(stored) {
				return false
			}
			stored = append(stored, tup)
		}
		for i, want := range stored {
			got, err := p.Tuple(i)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		// The delta area and footer must stay untouched by inserts.
		for _, b := range p.DeltaArea() {
			if b != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatalf("insert/read property: %v", err)
	}
}
