// Package page implements the NSM (N-ary Storage Model) slotted page layout
// used by the storage engine, extended with the delta-record area required
// by In-Place Appends (Figure 3 of the paper).
//
// A page of size P is laid out as:
//
//	[ header | tuple data ->     ...     <- slot array | delta-record area | footer ]
//	0        32                                        P-F-D               P-F      P
//
// where D is the delta-record area size chosen by the region's N×M scheme
// and F is the footer size. Tuples grow upward from the header; the slot
// array grows downward towards the tuples. The delta-record area is never
// touched by normal page operations: it exists so the page image can gain
// appended delta records on Flash without relocating any content.
//
// All mutating operations report their byte-level effects to an optional
// Recorder, which is how the buffer manager's change tracking (core.Tracker)
// learns about small in-place updates.
package page

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Layout constants.
const (
	// HeaderSize is the fixed page header size in bytes.
	HeaderSize = 32
	// FooterSize is the fixed page footer size in bytes.
	FooterSize = 16
	// MetaSize is the combined header+footer size; it is the length of the
	// Δmetadata carried by every delta record.
	MetaSize = HeaderSize + FooterSize
	// SlotSize is the size of one slot-array entry.
	SlotSize = 4

	// magic identifies an initialised page (stored in the footer).
	magic uint32 = 0x49504131 // "IPA1"
	// deletedLen marks a deleted slot.
	deletedLen uint16 = 0xFFFF
)

// Header field offsets.
const (
	offPageID    = 0  // uint64
	offObjectID  = 8  // uint32
	offLSN       = 12 // uint64
	offSlotCount = 20 // uint16
	offFreePtr   = 22 // uint16
	offFlags     = 24 // uint16
	offDeltaSize = 26 // uint16
	offSpare     = 28 // uint32
)

// Footer field offsets (relative to footer start).
const (
	offFooterLSN   = 0 // uint64
	offFooterMagic = 8 // uint32
	offFooterSpare = 12
)

// Flags stored in the page header.
const (
	// FlagOutOfPlace is the paper's out-of-place flag: set while the page
	// is buffered once its accumulated changes no longer conform to the
	// N×M scheme. It is cleared when the page is written out.
	FlagOutOfPlace uint16 = 1 << 0
	// FlagIndex marks a primary-key index entry page (the page kind used
	// by internal/index), distinguishing it from heap pages on Flash.
	FlagIndex uint16 = 1 << 1
)

// Errors returned by page operations.
var (
	// ErrPageFull is returned when a tuple does not fit the free space.
	ErrPageFull = errors.New("page: not enough free space")
	// ErrBadSlot is returned for slot numbers that do not exist.
	ErrBadSlot = errors.New("page: invalid slot")
	// ErrDeleted is returned when addressing a deleted tuple.
	ErrDeleted = errors.New("page: tuple deleted")
	// ErrBadUpdate is returned for updates that do not fit the tuple.
	ErrBadUpdate = errors.New("page: update outside tuple bounds")
	// ErrTooSmall is returned when the page buffer cannot hold the layout.
	ErrTooSmall = errors.New("page: buffer too small for layout")
	// ErrNotInitialized is returned when wrapping a buffer that does not
	// contain an initialised page.
	ErrNotInitialized = errors.New("page: buffer does not hold an initialised page")
)

// Recorder receives byte-level change notifications from mutating page
// operations. core.Tracker satisfies this interface.
type Recorder interface {
	// RecordWrite reports that the page bytes at offset changed from old
	// to new (body changes only).
	RecordWrite(offset int, old, new []byte)
	// RecordMetaChange reports that header or footer bytes changed.
	RecordMetaChange()
}

// Page wraps a byte buffer holding one NSM slotted page.
type Page struct {
	buf []byte
	rec Recorder
}

// Init formats buf as an empty page belonging to the given object, with a
// delta-record area of deltaAreaSize bytes, and returns the wrapped page.
func Init(buf []byte, pageID uint64, objectID uint32, deltaAreaSize int) (*Page, error) {
	minSize := HeaderSize + FooterSize + deltaAreaSize + SlotSize
	if len(buf) < minSize {
		return nil, fmt.Errorf("%w: %d < %d", ErrTooSmall, len(buf), minSize)
	}
	if deltaAreaSize < 0 || deltaAreaSize > int(^uint16(0)) {
		return nil, fmt.Errorf("page: invalid delta area size %d", deltaAreaSize)
	}
	for i := range buf {
		buf[i] = 0
	}
	p := &Page{buf: buf}
	binary.LittleEndian.PutUint64(buf[offPageID:], pageID)
	binary.LittleEndian.PutUint32(buf[offObjectID:], objectID)
	binary.LittleEndian.PutUint16(buf[offSlotCount:], 0)
	binary.LittleEndian.PutUint16(buf[offFreePtr:], HeaderSize)
	binary.LittleEndian.PutUint16(buf[offDeltaSize:], uint16(deltaAreaSize))
	binary.LittleEndian.PutUint32(buf[p.footerStart()+offFooterMagic:], magic)
	return p, nil
}

// Wrap interprets buf as an already initialised page.
func Wrap(buf []byte) (*Page, error) {
	if len(buf) < HeaderSize+FooterSize {
		return nil, ErrTooSmall
	}
	p := &Page{buf: buf}
	if binary.LittleEndian.Uint32(buf[p.footerStart()+offFooterMagic:]) != magic {
		return nil, ErrNotInitialized
	}
	return p, nil
}

// SetRecorder installs the change recorder; nil disables recording.
func (p *Page) SetRecorder(r Recorder) { p.rec = r }

// Buf returns the underlying buffer.
func (p *Page) Buf() []byte { return p.buf }

// Size returns the page size in bytes.
func (p *Page) Size() int { return len(p.buf) }

// ID returns the page identifier.
func (p *Page) ID() uint64 { return binary.LittleEndian.Uint64(p.buf[offPageID:]) }

// ObjectID returns the owning database object (table) identifier.
func (p *Page) ObjectID() uint32 { return binary.LittleEndian.Uint32(p.buf[offObjectID:]) }

// LSN returns the page LSN from the header.
func (p *Page) LSN() uint64 { return binary.LittleEndian.Uint64(p.buf[offLSN:]) }

// SetLSN updates the page LSN in header and footer (a metadata change).
func (p *Page) SetLSN(lsn uint64) {
	binary.LittleEndian.PutUint64(p.buf[offLSN:], lsn)
	binary.LittleEndian.PutUint64(p.buf[p.footerStart()+offFooterLSN:], lsn)
	p.metaChanged()
}

// Flags returns the header flags.
func (p *Page) Flags() uint16 { return binary.LittleEndian.Uint16(p.buf[offFlags:]) }

// SetFlags replaces the header flags (a metadata change).
func (p *Page) SetFlags(f uint16) {
	binary.LittleEndian.PutUint16(p.buf[offFlags:], f)
	p.metaChanged()
}

// DeltaAreaSize returns the size of the reserved delta-record area.
func (p *Page) DeltaAreaSize() int {
	return int(binary.LittleEndian.Uint16(p.buf[offDeltaSize:]))
}

// SlotCount returns the number of slots (including deleted ones).
func (p *Page) SlotCount() int {
	return int(binary.LittleEndian.Uint16(p.buf[offSlotCount:]))
}

func (p *Page) freePtr() int { return int(binary.LittleEndian.Uint16(p.buf[offFreePtr:])) }

func (p *Page) setHeaderU16(off int, v uint16) {
	binary.LittleEndian.PutUint16(p.buf[off:], v)
	p.metaChanged()
}

func (p *Page) metaChanged() {
	if p.rec != nil {
		p.rec.RecordMetaChange()
	}
}

// footerStart returns the offset of the footer.
func (p *Page) footerStart() int { return len(p.buf) - FooterSize }

// DeltaAreaStart returns the offset of the delta-record area. It is also
// the end of the region that byte patches may address (BodyEnd).
func (p *Page) DeltaAreaStart() int { return p.footerStart() - p.DeltaAreaSize() }

// BodyEnd returns the length of the page prefix that delta-record patches
// may address.
func (p *Page) BodyEnd() int { return p.DeltaAreaStart() }

// DeltaArea returns the delta-record area as a sub-slice of the page.
func (p *Page) DeltaArea() []byte {
	return p.buf[p.DeltaAreaStart():p.footerStart()]
}

// slotArrayEnd returns the exclusive upper bound of the slot array.
func (p *Page) slotArrayEnd() int { return p.DeltaAreaStart() }

// slotOffset returns the buffer offset of slot i's entry.
func (p *Page) slotOffset(i int) int { return p.slotArrayEnd() - (i+1)*SlotSize }

func (p *Page) slot(i int) (off, length int, err error) {
	if i < 0 || i >= p.SlotCount() {
		return 0, 0, fmt.Errorf("%w: %d of %d", ErrBadSlot, i, p.SlotCount())
	}
	so := p.slotOffset(i)
	off = int(binary.LittleEndian.Uint16(p.buf[so:]))
	length = int(binary.LittleEndian.Uint16(p.buf[so+2:]))
	return off, length, nil
}

// FreeSpace returns the number of bytes available for one more tuple
// (accounting for its slot entry).
func (p *Page) FreeSpace() int {
	free := p.slotOffset(p.SlotCount()) - p.freePtr()
	if free < 0 {
		return 0
	}
	return free
}

// InsertTuple stores data in the page and returns its slot number. The
// inserted bytes and the new slot entry are reported as body changes.
func (p *Page) InsertTuple(data []byte) (int, error) {
	if len(data) == 0 || len(data) >= int(deletedLen) {
		return 0, fmt.Errorf("page: tuple size %d unsupported", len(data))
	}
	need := len(data) + SlotSize
	if p.FreeSpace() < need {
		return 0, fmt.Errorf("%w: need %d, have %d", ErrPageFull, need, p.FreeSpace())
	}
	slot := p.SlotCount()
	off := p.freePtr()
	p.bodyWrite(off, data)
	so := p.slotOffset(slot)
	var entry [SlotSize]byte
	binary.LittleEndian.PutUint16(entry[0:], uint16(off))
	binary.LittleEndian.PutUint16(entry[2:], uint16(len(data)))
	p.bodyWrite(so, entry[:])
	p.setHeaderU16(offSlotCount, uint16(slot+1))
	p.setHeaderU16(offFreePtr, uint16(off+len(data)))
	return slot, nil
}

// Tuple returns a copy of the tuple stored in slot i.
func (p *Page) Tuple(i int) ([]byte, error) {
	off, length, err := p.slot(i)
	if err != nil {
		return nil, err
	}
	if uint16(length) == deletedLen {
		return nil, fmt.Errorf("%w: slot %d", ErrDeleted, i)
	}
	out := make([]byte, length)
	copy(out, p.buf[off:off+length])
	return out, nil
}

// TupleLen returns the length of the tuple in slot i, or ErrDeleted.
func (p *Page) TupleLen(i int) (int, error) {
	_, length, err := p.slot(i)
	if err != nil {
		return 0, err
	}
	if uint16(length) == deletedLen {
		return 0, fmt.Errorf("%w: slot %d", ErrDeleted, i)
	}
	return length, nil
}

// UpdateTupleAt overwrites len(data) bytes of the tuple in slot i starting
// at tuple-relative offset off. This is the in-place small update that IPA
// turns into delta records.
func (p *Page) UpdateTupleAt(i, off int, data []byte) error {
	toff, tlen, err := p.slot(i)
	if err != nil {
		return err
	}
	if uint16(tlen) == deletedLen {
		return fmt.Errorf("%w: slot %d", ErrDeleted, i)
	}
	if off < 0 || off+len(data) > tlen {
		return fmt.Errorf("%w: [%d,%d) in tuple of %d bytes", ErrBadUpdate, off, off+len(data), tlen)
	}
	p.bodyWrite(toff+off, data)
	return nil
}

// UpdateTuple replaces the whole tuple in slot i. Only same-size updates
// are supported (NSM fixed-size tuples), which is all the OLTP workloads in
// the paper require.
func (p *Page) UpdateTuple(i int, data []byte) error {
	_, tlen, err := p.slot(i)
	if err != nil {
		return err
	}
	if uint16(tlen) == deletedLen {
		return fmt.Errorf("%w: slot %d", ErrDeleted, i)
	}
	if len(data) != tlen {
		return fmt.Errorf("%w: new size %d != %d", ErrBadUpdate, len(data), tlen)
	}
	return p.UpdateTupleAt(i, 0, data)
}

// RestoreTuple rewrites slot i during recovery: the slot's live length and
// the tuple bytes are installed regardless of the slot's previous (possibly
// deleted) state. The slot must already exist with a valid offset — redo
// creates missing slots with InsertTuple first.
func (p *Page) RestoreTuple(i int, data []byte) error {
	if i < 0 || i >= p.SlotCount() {
		return fmt.Errorf("%w: %d of %d", ErrBadSlot, i, p.SlotCount())
	}
	so := p.slotOffset(i)
	off := int(binary.LittleEndian.Uint16(p.buf[so:]))
	if off < HeaderSize || off+len(data) > p.BodyEnd() {
		return fmt.Errorf("%w: slot %d offset %d", ErrBadSlot, i, off)
	}
	var entry [2]byte
	binary.LittleEndian.PutUint16(entry[:], uint16(len(data)))
	p.bodyWrite(so+2, entry[:])
	p.bodyWrite(off, data)
	return nil
}

// DeleteTuple marks the tuple in slot i as deleted. The space is not
// compacted (NSM pages are compacted lazily by reorganisation, which the
// OLTP workloads here never need).
func (p *Page) DeleteTuple(i int) error {
	_, tlen, err := p.slot(i)
	if err != nil {
		return err
	}
	if uint16(tlen) == deletedLen {
		return fmt.Errorf("%w: slot %d", ErrDeleted, i)
	}
	so := p.slotOffset(i)
	var entry [2]byte
	binary.LittleEndian.PutUint16(entry[:], deletedLen)
	p.bodyWrite(so+2, entry[:])
	return nil
}

// Deleted reports whether slot i holds a deleted tuple.
func (p *Page) Deleted(i int) (bool, error) {
	_, length, err := p.slot(i)
	if err != nil {
		return false, err
	}
	return uint16(length) == deletedLen, nil
}

// bodyWrite copies data into the page body at offset and reports the change.
func (p *Page) bodyWrite(offset int, data []byte) {
	if p.rec != nil {
		old := make([]byte, len(data))
		copy(old, p.buf[offset:offset+len(data)])
		copy(p.buf[offset:], data)
		p.rec.RecordWrite(offset, old, data)
		return
	}
	copy(p.buf[offset:], data)
}

// Meta returns the Δmetadata image of the page: the concatenation of header
// and footer (MetaSize bytes).
func (p *Page) Meta() []byte {
	meta := make([]byte, MetaSize)
	copy(meta, p.buf[:HeaderSize])
	copy(meta[HeaderSize:], p.buf[p.footerStart():])
	return meta
}

// ApplyMeta installs a Δmetadata image (header and footer) taken from a
// delta record. The delta-area size is preserved from the existing header
// to protect the layout against corrupted metadata.
func (p *Page) ApplyMeta(meta []byte) error {
	if len(meta) != MetaSize {
		return fmt.Errorf("page: Δmetadata is %d bytes, want %d", len(meta), MetaSize)
	}
	deltaSize := p.DeltaAreaSize()
	copy(p.buf[:HeaderSize], meta[:HeaderSize])
	copy(p.buf[p.footerStart():], meta[HeaderSize:])
	binary.LittleEndian.PutUint16(p.buf[offDeltaSize:], uint16(deltaSize))
	return nil
}

// ResetDeltaArea fills the delta-record area with the erased byte 0xFF so a
// freshly (re)written page image can later take in-place appends.
func (p *Page) ResetDeltaArea() {
	area := p.DeltaArea()
	for i := range area {
		area[i] = 0xFF
	}
}

// ZeroDeltaArea fills the delta-record area with zeroes (used by the
// traditional baseline where the area is absent/ignored).
func (p *Page) ZeroDeltaArea() {
	area := p.DeltaArea()
	for i := range area {
		area[i] = 0
	}
}
