package core

import (
	"bytes"
	"testing"
	"testing/quick"
)

func newTestTracker(n, m, existing int) *Tracker {
	return NewTracker(Scheme{N: n, M: m}, 4, 1024, existing)
}

func TestTrackerEligibleSmallUpdate(t *testing.T) {
	tr := newTestTracker(2, 4, 0)
	tr.RecordChange(100, 0x00, 0x01)
	tr.RecordChange(101, 0x10, 0x11)
	if !tr.Eligible() || !tr.Dirty() {
		t.Fatalf("small update should be eligible and dirty")
	}
	if tr.NetChangedBytes() != 2 {
		t.Fatalf("NetChangedBytes = %d", tr.NetChangedBytes())
	}
	recs := tr.BuildRecords([]byte{1, 2, 3, 4})
	if len(recs) != 1 || len(recs[0].Patches) != 2 {
		t.Fatalf("expected one record with two patches, got %+v", recs)
	}
}

func TestTrackerExceedsScheme(t *testing.T) {
	tr := newTestTracker(2, 4, 0)
	for i := 0; i < 9; i++ { // 9 > N*M = 8
		tr.RecordChange(i, 0, byte(i+1))
	}
	if !tr.OutOfPlace() {
		t.Fatalf("exceeding N×M must set the out-of-place flag")
	}
	if tr.Eligible() {
		t.Fatalf("out-of-place page cannot be eligible")
	}
	if recs := tr.BuildRecords([]byte{1, 2, 3, 4}); recs != nil {
		t.Fatalf("BuildRecords must return nil when not eligible")
	}
}

func TestTrackerExistingRecordsLimit(t *testing.T) {
	tr := newTestTracker(2, 4, 2)
	if !tr.OutOfPlace() {
		t.Fatalf("a page with all record slots used must evict out-of-place")
	}
	tr = newTestTracker(2, 4, 1)
	for i := 0; i < 5; i++ { // needs 2 records but only 1 slot remains
		tr.RecordChange(i, 0, 1)
	}
	if !tr.OutOfPlace() {
		t.Fatalf("changes that do not fit the remaining slots must set out-of-place")
	}
}

func TestTrackerRevertedChange(t *testing.T) {
	tr := newTestTracker(2, 4, 0)
	tr.RecordChange(50, 0xAA, 0xBB)
	tr.RecordChange(50, 0xBB, 0xAA) // back to the on-Flash value
	if tr.Dirty() {
		t.Fatalf("reverted change must leave the page clean")
	}
	if tr.NetChangedBytes() != 0 {
		t.Fatalf("NetChangedBytes = %d", tr.NetChangedBytes())
	}
}

func TestTrackerSameValueIgnored(t *testing.T) {
	tr := newTestTracker(2, 4, 0)
	tr.RecordChange(10, 0x42, 0x42)
	if tr.Dirty() {
		t.Fatalf("writing the same value is not a change")
	}
}

func TestTrackerMetadataOnly(t *testing.T) {
	tr := newTestTracker(2, 4, 0)
	tr.RecordMetaChange()
	if !tr.Dirty() || !tr.Eligible() {
		t.Fatalf("metadata change should be dirty and eligible")
	}
	recs := tr.BuildRecords([]byte{9, 9, 9, 9})
	if len(recs) != 1 || len(recs[0].Patches) != 0 {
		t.Fatalf("metadata-only eviction should produce one patchless record")
	}
}

func TestTrackerOutOfBodyOffset(t *testing.T) {
	tr := newTestTracker(2, 4, 0)
	tr.RecordChange(5000, 0, 1) // beyond bodyLen=1024
	if !tr.OutOfPlace() {
		t.Fatalf("out-of-body change must force out-of-place")
	}
}

func TestTrackerMultipleChangesSameByte(t *testing.T) {
	tr := newTestTracker(2, 4, 0)
	tr.RecordChange(7, 1, 2)
	tr.RecordChange(7, 2, 3)
	if tr.NetChangedBytes() != 1 {
		t.Fatalf("the same byte counts once, got %d", tr.NetChangedBytes())
	}
	recs := tr.BuildRecords(make([]byte, 4))
	if len(recs) != 1 || recs[0].Patches[0].Value != 3 {
		t.Fatalf("latest value must win: %+v", recs)
	}
}

func TestTrackerRestoreOriginal(t *testing.T) {
	tr := newTestTracker(2, 8, 0)
	buf := make([]byte, 32)
	for i := range buf {
		buf[i] = byte(i)
	}
	// Apply two in-place updates, informing the tracker.
	tr.RecordChange(3, buf[3], 0xEE)
	buf[3] = 0xEE
	tr.RecordChange(9, buf[9], 0xDD)
	buf[9] = 0xDD
	img := tr.RestoreOriginal(buf)
	if img[3] != 3 || img[9] != 9 {
		t.Fatalf("RestoreOriginal did not undo the changes: %v", img[:12])
	}
	if buf[3] != 0xEE {
		t.Fatalf("RestoreOriginal must not modify the buffered page")
	}
}

func TestTrackerReset(t *testing.T) {
	tr := newTestTracker(2, 4, 0)
	tr.RecordChange(1, 0, 1)
	tr.RecordMetaChange()
	tr.Reset(1)
	if tr.Dirty() || tr.Existing() != 1 || tr.OutOfPlace() {
		t.Fatalf("Reset did not clear the state: dirty=%v existing=%d oop=%v", tr.Dirty(), tr.Existing(), tr.OutOfPlace())
	}
	tr.Reset(2)
	if !tr.OutOfPlace() {
		t.Fatalf("Reset to a full page must set out-of-place")
	}
}

func TestTrackerDisabledScheme(t *testing.T) {
	tr := NewTracker(Disabled, 4, 1024, 0)
	if !tr.OutOfPlace() || tr.Eligible() {
		t.Fatalf("disabled scheme must always be out-of-place")
	}
	tr.RecordChange(1, 0, 1) // must not panic or track
	if tr.NetChangedBytes() != 0 {
		t.Fatalf("disabled tracker should not track")
	}
}

func TestTrackerAnalyticCounting(t *testing.T) {
	tr := NewTracker(Disabled, 4, 1024, 0)
	tr.SetAnalytic(true)
	for i := 0; i < 200; i++ {
		tr.RecordChange(i, 0, byte(i+1))
	}
	if tr.NetChangedBytes() != 200 {
		t.Fatalf("analytic tracker must keep counting, got %d", tr.NetChangedBytes())
	}
	if tr.Eligible() {
		t.Fatalf("analytic counting must not make a disabled scheme eligible")
	}
}

func TestTrackerAnalyticCap(t *testing.T) {
	tr := NewTracker(Scheme{N: 1, M: 1}, 4, 64*1024, 0)
	tr.SetAnalytic(true)
	for i := 0; i < analyticCap+100; i++ {
		tr.RecordChange(i%60000, 0, 1)
	}
	if tr.NetChangedBytes() < analyticCap {
		t.Fatalf("analytic cap handling lost counts: %d", tr.NetChangedBytes())
	}
}

func TestTrackerOriginalMeta(t *testing.T) {
	tr := newTestTracker(2, 4, 0)
	meta := []byte{1, 2, 3, 4}
	tr.SetOriginalMeta(meta)
	meta[0] = 99 // the tracker must have taken a copy
	if got := tr.OriginalMeta(); !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Fatalf("OriginalMeta = %v", got)
	}
	tr.Reset(1)
	if tr.OriginalMeta() == nil {
		t.Fatalf("Reset must preserve the original metadata snapshot")
	}
}

func TestTrackerRecordWrite(t *testing.T) {
	tr := newTestTracker(2, 8, 0)
	tr.RecordWrite(10, []byte{1, 2, 3, 4}, []byte{1, 9, 3, 8})
	if tr.NetChangedBytes() != 2 {
		t.Fatalf("RecordWrite should track only differing bytes, got %d", tr.NetChangedBytes())
	}
}

// TestTrackerEligibilityProperty: for arbitrary small change sets, the
// tracker is eligible exactly when the number of required records fits the
// free slots of the scheme.
func TestTrackerEligibilityProperty(t *testing.T) {
	f := func(offsets []uint16, existing uint8) bool {
		n, m := 4, 4
		ex := int(existing) % (n + 1)
		tr := NewTracker(Scheme{N: n, M: m}, 4, 1<<16-1, ex)
		seen := make(map[uint16]bool)
		for i, off := range offsets {
			if len(seen) >= 64 {
				break
			}
			off %= 4096
			if !seen[off] {
				seen[off] = true
			}
			tr.RecordChange(int(off), 0, byte(i+1))
		}
		distinct := len(seen)
		needed := (distinct + m - 1) / m
		wantEligible := distinct > 0 && needed <= n-ex || distinct == 0 && ex < n
		// Once the tracker went out-of-place it stays there, even if later
		// reverts would have made the set fit again; so only check the
		// "fits implies eligible" direction when it never overflowed.
		if wantEligible && needed <= n-ex && !tr.OutOfPlace() {
			return tr.Eligible()
		}
		if needed > n-ex {
			return tr.OutOfPlace() && !tr.Eligible()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatalf("eligibility property: %v", err)
	}
}
