package core

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Patch is one byte-granular change: the byte at Offset (relative to the
// start of the database page) takes the value Value.
type Patch struct {
	Offset uint16
	Value  byte
}

// DeltaRecord is the unit appended to the delta-record area of a Flash page
// on eviction. It coalesces the changes of one buffer-pool residency of the
// page: up to M byte patches of the page body plus the up-to-date copy of
// the page metadata (header and footer), called Δmetadata in the paper.
type DeltaRecord struct {
	Patches []Patch
	Meta    []byte
}

// EncodedSize returns the number of bytes the record occupies on the page
// under the given scheme.
func (r DeltaRecord) EncodedSize(s Scheme) int { return s.RecordSize(len(r.Meta)) }

// EncodeRecord serialises rec into dst using the layout of Figure 3,
// extended with an integrity trailer:
//
//	[ctrl 1][off lo, off hi, value] × M [Δmetadata metaLen][checksum 1][commit 1]
//
// Unused patch slots carry the offset 0xFFFF. The commit marker is the last
// byte of the record; NAND programs torn by a power cut persist only a
// prefix, so a record missing its marker (or failing its checksum) is
// rejected by DecodeRecord. dst must be at least RecordSize(metaLen) bytes;
// the remainder is left untouched.
func EncodeRecord(dst []byte, rec DeltaRecord, s Scheme, metaLen int) error {
	if len(rec.Patches) > s.M {
		return fmt.Errorf("%w: %d > M=%d", ErrTooManyPatches, len(rec.Patches), s.M)
	}
	if len(rec.Meta) != metaLen {
		return fmt.Errorf("%w: got %d, want %d", ErrBadMeta, len(rec.Meta), metaLen)
	}
	need := s.RecordSize(metaLen)
	if len(dst) < need {
		return fmt.Errorf("%w: %d < %d", ErrAreaTooSmall, len(dst), need)
	}
	dst[0] = ctrlPresent
	pos := 1
	for i := 0; i < s.M; i++ {
		if i < len(rec.Patches) {
			binary.LittleEndian.PutUint16(dst[pos:], rec.Patches[i].Offset)
			dst[pos+2] = rec.Patches[i].Value
		} else {
			binary.LittleEndian.PutUint16(dst[pos:], unusedOffset)
			dst[pos+2] = 0xFF
		}
		pos += patchSize
	}
	copy(dst[pos:pos+metaLen], rec.Meta)
	pos += metaLen
	dst[pos] = recordChecksum(dst[:pos])
	dst[pos+1] = ctrlCommit
	return nil
}

// DecodeRecord parses one record slot. The second return value reports
// whether the slot holds a complete, verified record; blank (erased) slots,
// records torn by a power cut (missing their commit marker) and records
// failing their checksum return false.
func DecodeRecord(src []byte, s Scheme, metaLen int) (DeltaRecord, bool) {
	need := s.RecordSize(metaLen)
	if len(src) < need || src[0] != ctrlPresent {
		return DeltaRecord{}, false
	}
	if src[need-1] != ctrlCommit || src[need-2] != recordChecksum(src[:need-2]) {
		return DeltaRecord{}, false
	}
	rec := DeltaRecord{Meta: make([]byte, metaLen)}
	pos := 1
	for i := 0; i < s.M; i++ {
		off := binary.LittleEndian.Uint16(src[pos:])
		if off != unusedOffset {
			rec.Patches = append(rec.Patches, Patch{Offset: off, Value: src[pos+2]})
		}
		pos += patchSize
	}
	copy(rec.Meta, src[pos:pos+metaLen])
	return rec, true
}

// EncodeArea serialises records into a fresh delta-record area image of
// AreaSize bytes, starting at record slot firstSlot. Slots before firstSlot
// and after the encoded records are left in the erased state (0xFF) so the
// image can be programmed over an existing area without violating the
// bit-clear-only rule.
func EncodeArea(records []DeltaRecord, s Scheme, metaLen, firstSlot int) ([]byte, error) {
	area := make([]byte, s.AreaSize(metaLen))
	for i := range area {
		area[i] = 0xFF
	}
	if firstSlot < 0 || firstSlot+len(records) > s.N {
		return nil, fmt.Errorf("%w: records [%d,%d) exceed N=%d", ErrAreaTooSmall, firstSlot, firstSlot+len(records), s.N)
	}
	size := s.RecordSize(metaLen)
	for i, rec := range records {
		off := (firstSlot + i) * size
		if err := EncodeRecord(area[off:off+size], rec, s, metaLen); err != nil {
			return nil, err
		}
	}
	return area, nil
}

// DecodeArea parses every programmed record of a delta-record area, in
// append order.
func DecodeArea(area []byte, s Scheme, metaLen int) []DeltaRecord {
	if !s.Enabled() {
		return nil
	}
	size := s.RecordSize(metaLen)
	var out []DeltaRecord
	for slot := 0; slot < s.N && (slot+1)*size <= len(area); slot++ {
		rec, ok := DecodeRecord(area[slot*size:(slot+1)*size], s, metaLen)
		if !ok {
			// Records are appended strictly in slot order, so the first
			// blank slot terminates the scan.
			break
		}
		out = append(out, rec)
	}
	return out
}

// CountRecords returns the number of programmed records in the area.
func CountRecords(area []byte, s Scheme, metaLen int) int {
	return len(DecodeArea(area, s, metaLen))
}

// ApplyRecords applies the body patches of every record (in append order)
// to page and returns the Δmetadata of the newest record, or nil if records
// is empty. The caller is responsible for installing the returned metadata
// into the page header and footer.
func ApplyRecords(page []byte, records []DeltaRecord) []byte {
	var meta []byte
	for _, rec := range records {
		for _, p := range rec.Patches {
			if int(p.Offset) < len(page) {
				page[int(p.Offset)] = p.Value
			}
		}
		if rec.Meta != nil {
			meta = rec.Meta
		}
	}
	return meta
}

// SplitPatches partitions patches into delta records of at most M patches
// each, in ascending offset order. The metadata copy meta is attached to
// every record so the newest record always carries a complete Δmetadata.
func SplitPatches(patches []Patch, meta []byte, s Scheme) []DeltaRecord {
	sorted := make([]Patch, len(patches))
	copy(sorted, patches)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Offset < sorted[j].Offset })
	var out []DeltaRecord
	for len(sorted) > 0 {
		n := s.M
		if n > len(sorted) {
			n = len(sorted)
		}
		rec := DeltaRecord{Patches: sorted[:n:n], Meta: meta}
		out = append(out, rec)
		sorted = sorted[n:]
	}
	if len(out) == 0 {
		// A metadata-only change still needs one record to carry Δmetadata.
		out = append(out, DeltaRecord{Meta: meta})
	}
	return out
}
