package core

// Tracker records the byte-granular changes applied to a buffered database
// page between the moment it was faulted in (or last flushed) and its
// eviction. The buffer manager feeds every in-place update into the
// tracker; on eviction the storage manager asks the tracker whether the
// page still conforms to the region's N×M scheme and, if so, obtains the
// delta records to append.
//
// Following the paper, the tracker stops recording as soon as the scheme is
// violated ("the out-of-place flag is set, and further updates are not
// tracked until eviction"), which keeps the bookkeeping overhead minimal.
type Tracker struct {
	scheme   Scheme
	metaLen  int
	existing int // delta records already present on the Flash page
	bodyLen  int // bytes of the page covered by patches (header..end of body)

	outOfPlace  bool
	metaChanged bool
	changes     map[uint16]changedByte

	// analytic keeps counting changed bytes even after the out-of-place
	// flag is set. The paper's prototype stops tracking at that point to
	// minimise overhead; the analytic mode exists so the experiments can
	// report the net-modified-bytes distribution of *all* dirty evictions
	// (Figure 1), not only the IPA-eligible ones.
	analytic     bool
	extraChanged int // changed bytes counted past the analytic map cap

	// originalMeta is the header/footer image as it is physically stored
	// on the Flash page. The storage manager needs it to rebuild the
	// on-Flash image for the IPA-over-conventional-SSD write path, where
	// the whole page (original content + appended delta records) travels
	// over the block-device interface.
	originalMeta []byte
}

// analyticCap bounds the memory used by analytic change counting.
const analyticCap = 8192

type changedByte struct {
	old byte
	new byte
}

// NewTracker creates a tracker for a page that already carries existing
// delta records on Flash. bodyLen is the length of the page prefix that may
// be patched byte-wise (everything before the delta-record area); changes
// outside it are treated as metadata or force an out-of-place write.
func NewTracker(scheme Scheme, metaLen, bodyLen, existing int) *Tracker {
	t := &Tracker{
		scheme:   scheme,
		metaLen:  metaLen,
		existing: existing,
		bodyLen:  bodyLen,
		// With IPA disabled, or with every record slot already used on
		// Flash, the next eviction must go out-of-place.
		outOfPlace: !scheme.Enabled() || existing >= scheme.N,
	}
	if scheme.Enabled() {
		t.changes = make(map[uint16]changedByte, scheme.M)
	}
	return t
}

// Scheme returns the N×M scheme the tracker enforces.
func (t *Tracker) Scheme() Scheme { return t.scheme }

// Existing returns the number of delta records already on the Flash page.
func (t *Tracker) Existing() int { return t.existing }

// OutOfPlace reports whether the page must be written out-of-place on the
// next eviction.
func (t *Tracker) OutOfPlace() bool { return t.outOfPlace }

// SetOriginalMeta records the header/footer image currently stored on the
// Flash page (before any Δmetadata was applied during reconstruction).
func (t *Tracker) SetOriginalMeta(meta []byte) {
	t.originalMeta = append([]byte(nil), meta...)
}

// OriginalMeta returns the header/footer image stored on Flash, or nil if
// it was never recorded.
func (t *Tracker) OriginalMeta() []byte { return t.originalMeta }

// SetAnalytic enables analytic change counting (see the analytic field).
func (t *Tracker) SetAnalytic(on bool) {
	t.analytic = on
	if on && t.changes == nil {
		t.changes = make(map[uint16]changedByte)
	}
}

// MarkOutOfPlace forces the next eviction to use a traditional
// out-of-place write and stops change tracking (unless analytic counting
// is enabled).
func (t *Tracker) MarkOutOfPlace() {
	t.outOfPlace = true
	if !t.analytic {
		t.changes = nil
	}
}

// MetaChanged reports whether page metadata (header/footer) changed.
func (t *Tracker) MetaChanged() bool { return t.metaChanged }

// RecordMetaChange notes that page metadata (header or footer bytes)
// changed. Metadata changes do not count against M: they travel in the
// Δmetadata portion of the delta record.
func (t *Tracker) RecordMetaChange() { t.metaChanged = true }

// RecordChange notes that the byte at offset changed from old to new.
// Offsets must address the page body; the tracker transparently handles a
// byte changing several times and a byte reverting to its original value.
// Once the accumulated changes can no longer fit the remaining delta-record
// slots, tracking stops and the page is marked for an out-of-place write.
func (t *Tracker) RecordChange(offset int, old, new byte) {
	if t.outOfPlace && !t.analytic {
		return
	}
	if old == new {
		return
	}
	if offset < 0 || offset >= t.bodyLen || offset > int(^uint16(0)) {
		t.MarkOutOfPlace()
		if !t.analytic {
			return
		}
		// Analytic counting still wants the byte accounted for.
		t.extraChanged += 1
		return
	}
	if t.analytic && len(t.changes) >= analyticCap {
		t.extraChanged++
		if !t.outOfPlace && !t.fits() {
			t.MarkOutOfPlace()
		}
		return
	}
	off := uint16(offset)
	if prev, ok := t.changes[off]; ok {
		if prev.old == new {
			// The byte reverted to its on-Flash value; drop the change.
			delete(t.changes, off)
		} else {
			t.changes[off] = changedByte{old: prev.old, new: new}
		}
	} else {
		t.changes[off] = changedByte{old: old, new: new}
	}
	if !t.fits() {
		t.MarkOutOfPlace()
	}
}

// RecordWrite is a convenience wrapper recording a multi-byte in-place
// update starting at offset, with old and new holding the previous and new
// images of the updated range.
func (t *Tracker) RecordWrite(offset int, old, new []byte) {
	if t.outOfPlace && !t.analytic {
		return
	}
	for i := range new {
		var o byte
		if i < len(old) {
			o = old[i]
		}
		t.RecordChange(offset+i, o, new[i])
		if t.outOfPlace && !t.analytic {
			return
		}
	}
}

// fits reports whether the tracked changes still fit the remaining record
// slots of the scheme.
func (t *Tracker) fits() bool {
	return t.recordsNeeded() <= t.scheme.N-t.existing
}

// recordsNeeded returns how many delta records the tracked changes require.
func (t *Tracker) recordsNeeded() int {
	if !t.scheme.Enabled() {
		return t.scheme.N + 1 // never fits
	}
	if len(t.changes) == 0 {
		if t.metaChanged {
			return 1
		}
		return 0
	}
	return (len(t.changes) + t.scheme.M - 1) / t.scheme.M
}

// Dirty reports whether any change (body or metadata) was tracked. Pages
// whose tracking stopped because the out-of-place flag was set rely on the
// buffer manager's dirty bit instead.
func (t *Tracker) Dirty() bool {
	return t.metaChanged || len(t.changes) > 0
}

// NetChangedBytes returns the number of distinct body bytes whose value
// differs from the on-Flash image. It is the quantity behind Figure 1 of
// the paper (DBMS write-amplification analysis). Without analytic mode the
// count is only meaningful while the page is still IPA-eligible.
func (t *Tracker) NetChangedBytes() int { return len(t.changes) + t.extraChanged }

// Eligible reports whether the page can be evicted using an in-place
// append: IPA must be enabled, the out-of-place flag must not be set and
// the changes must fit the remaining record slots.
func (t *Tracker) Eligible() bool {
	return t.scheme.Enabled() && !t.outOfPlace && t.fits()
}

// Patches returns the tracked changes as patches in unspecified order.
func (t *Tracker) Patches() []Patch {
	out := make([]Patch, 0, len(t.changes))
	for off, ch := range t.changes {
		out = append(out, Patch{Offset: off, Value: ch.new})
	}
	return out
}

// BuildRecords turns the tracked changes into delta records carrying the
// supplied Δmetadata. It returns nil if the page is not eligible for an
// in-place append or nothing changed.
func (t *Tracker) BuildRecords(meta []byte) []DeltaRecord {
	if !t.Eligible() || !t.Dirty() {
		return nil
	}
	return SplitPatches(t.Patches(), meta, t.scheme)
}

// RestoreOriginal undoes the tracked body changes on a copy of the buffered
// page, producing the image currently stored on Flash. The storage manager
// uses it on the IPA-over-conventional-SSD path, where the whole page
// (original body + appended delta records) is written over the block-device
// interface.
func (t *Tracker) RestoreOriginal(buffered []byte) []byte {
	img := make([]byte, len(buffered))
	copy(img, buffered)
	for off, ch := range t.changes {
		if int(off) < len(img) {
			img[off] = ch.old
		}
	}
	return img
}

// Reset prepares the tracker for the next residency of the page in the
// buffer pool: the number of on-Flash records becomes existing and all
// tracked state is discarded.
func (t *Tracker) Reset(existing int) {
	t.existing = existing
	t.outOfPlace = !t.scheme.Enabled() || existing >= t.scheme.N
	t.metaChanged = false
	t.extraChanged = 0
	if t.scheme.Enabled() || t.analytic {
		t.changes = make(map[uint16]changedByte, t.scheme.M)
	} else {
		t.changes = nil
	}
}
