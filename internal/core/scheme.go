// Package core implements In-Place Appends (IPA), the primary contribution
// of the paper.
//
// IPA transforms small in-place updates of database pages into delta
// records at page-eviction time and appends them to a reserved delta-record
// area at the end of the very same physical Flash page. Because appending
// only clears erased bits (1 -> 0), the Flash page can be re-programmed
// without a preceding erase, which avoids page invalidation, out-of-place
// writes and the garbage-collection work they cause.
//
// The package provides:
//
//   - the N×M configuration scheme and the sizing of the delta-record area,
//   - the delta-record wire format (control byte, <new_value, offset> byte
//     patches, Δmetadata) and its encoder/decoder,
//   - page reconstruction (applying delta records on fetch), and
//   - the change Tracker used by the buffer manager to decide, on eviction,
//     whether a page can be written with an in-place append or must fall
//     back to a traditional out-of-place write.
package core

import (
	"errors"
	"fmt"
)

// Scheme is the N×M configuration of In-Place Appends for a database
// object: at most N delta records may be appended to a page (one per
// eviction cycle) and each record may carry at most M changed bytes.
// The zero value (0×0) disables IPA, which is the traditional baseline.
type Scheme struct {
	// N is the maximum number of delta records per page.
	N int
	// M is the maximum number of changed bytes per delta record.
	M int
}

// Errors returned by scheme validation and record encoding.
var (
	// ErrSchemeInvalid reports a negative or inconsistent N×M scheme.
	ErrSchemeInvalid = errors.New("core: invalid N×M scheme")
	// ErrTooManyPatches reports a delta record with more than M patches.
	ErrTooManyPatches = errors.New("core: delta record exceeds M changed bytes")
	// ErrBadMeta reports Δmetadata whose length does not match the layout.
	ErrBadMeta = errors.New("core: Δmetadata length mismatch")
	// ErrAreaTooSmall reports a delta-record area buffer smaller than the
	// scheme requires.
	ErrAreaTooSmall = errors.New("core: delta-record area too small")
)

// Disabled is the 0×0 scheme: no in-place appends (traditional behaviour).
var Disabled = Scheme{}

// Validate reports whether the scheme is usable.
func (s Scheme) Validate() error {
	if s.N < 0 || s.M < 0 {
		return fmt.Errorf("%w: %s", ErrSchemeInvalid, s)
	}
	if (s.N == 0) != (s.M == 0) {
		return fmt.Errorf("%w: %s (N and M must both be zero or both be positive)", ErrSchemeInvalid, s)
	}
	if s.M > maxPatchesPerRecord {
		return fmt.Errorf("%w: M=%d exceeds %d", ErrSchemeInvalid, s.M, maxPatchesPerRecord)
	}
	return nil
}

// Enabled reports whether the scheme enables in-place appends.
func (s Scheme) Enabled() bool { return s.N > 0 && s.M > 0 }

// RecordSize returns the on-page size in bytes of one delta record under
// this scheme: one control byte, M three-byte <offset, new_value> pairs,
// metaLen bytes of Δmetadata, a checksum byte and the trailing commit
// marker. The marker is programmed last (NAND tears are prefixes), so a
// power cut mid-append can never leave a partial record that decodes as
// valid.
func (s Scheme) RecordSize(metaLen int) int {
	return 1 + patchSize*s.M + metaLen + 2
}

// AreaSize returns the size of the delta-record area reserved at the end of
// every database page: N × (1 + 3·M + Δmetadata).
func (s Scheme) AreaSize(metaLen int) int {
	if !s.Enabled() {
		return 0
	}
	return s.N * s.RecordSize(metaLen)
}

// String renders the scheme in the paper's [N×M] notation.
func (s Scheme) String() string {
	return fmt.Sprintf("%dx%d", s.N, s.M)
}

const (
	// patchSize is the encoded size of one <offset, new_value> pair.
	patchSize = 3
	// maxPatchesPerRecord bounds M so offsets of unused pairs (0xFFFF)
	// remain distinguishable and records stay small.
	maxPatchesPerRecord = 256
	// ctrlPresent marks a programmed (valid) delta record. It must differ
	// from the erased byte 0xFF and contain enough zero bits that a
	// partially programmed record cannot be mistaken for a valid one.
	ctrlPresent byte = 0x5A
	// ctrlCommit is the trailing commit marker of a record: the last byte
	// programmed. A record without it was torn by a power cut and is
	// ignored by DecodeRecord.
	ctrlCommit byte = 0xC3
	// unusedOffset marks an unused patch slot inside a record.
	unusedOffset uint16 = 0xFFFF
)

// recordChecksum folds the record bytes (control byte, patches and
// Δmetadata) into the one-byte checksum stored in front of the commit
// marker. It guards the delta area against bit corruption on the
// conventional-SSD path, where appended records carry no per-record OOB
// ECC.
func recordChecksum(b []byte) byte {
	var x byte = 0xA5
	for _, v := range b {
		x = x<<1 | x>>7 // rotate so byte order matters
		x ^= v
	}
	return x
}
