package core

import (
	"bytes"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestSchemeValidate(t *testing.T) {
	cases := []struct {
		s  Scheme
		ok bool
	}{
		{Scheme{}, true},
		{Scheme{N: 2, M: 4}, true},
		{Scheme{N: 1, M: 256}, true},
		{Scheme{N: -1, M: 4}, false},
		{Scheme{N: 2, M: 0}, false},
		{Scheme{N: 0, M: 2}, false},
		{Scheme{N: 1, M: 257}, false},
	}
	for _, tc := range cases {
		err := tc.s.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.s, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: expected error", tc.s)
		}
	}
}

func TestSchemeSizes(t *testing.T) {
	s := Scheme{N: 2, M: 4}
	const metaLen = 48
	if got := s.RecordSize(metaLen); got != 1+3*4+48+2 {
		t.Errorf("RecordSize = %d", got)
	}
	if got := s.AreaSize(metaLen); got != 2*(1+12+48+2) {
		t.Errorf("AreaSize = %d", got)
	}
	if Disabled.AreaSize(metaLen) != 0 {
		t.Errorf("disabled scheme must have empty area")
	}
	if s.String() != "2x4" || Disabled.String() != "0x0" {
		t.Errorf("String() wrong: %s %s", s, Disabled)
	}
	if !s.Enabled() || Disabled.Enabled() {
		t.Errorf("Enabled() wrong")
	}
}

func TestRecordEncodeDecodeRoundTrip(t *testing.T) {
	s := Scheme{N: 2, M: 4}
	metaLen := 8
	rec := DeltaRecord{
		Patches: []Patch{{Offset: 100, Value: 0xAB}, {Offset: 7, Value: 0x01}},
		Meta:    []byte{1, 2, 3, 4, 5, 6, 7, 8},
	}
	buf := make([]byte, s.RecordSize(metaLen))
	for i := range buf {
		buf[i] = 0xFF
	}
	if err := EncodeRecord(buf, rec, s, metaLen); err != nil {
		t.Fatalf("EncodeRecord: %v", err)
	}
	got, ok := DecodeRecord(buf, s, metaLen)
	if !ok {
		t.Fatalf("DecodeRecord reported a blank slot")
	}
	if !reflect.DeepEqual(got.Patches, rec.Patches) {
		t.Fatalf("patches mismatch: %+v vs %+v", got.Patches, rec.Patches)
	}
	if !bytes.Equal(got.Meta, rec.Meta) {
		t.Fatalf("meta mismatch")
	}
}

func TestRecordEncodeErrors(t *testing.T) {
	s := Scheme{N: 1, M: 2}
	metaLen := 4
	buf := make([]byte, s.RecordSize(metaLen))
	tooMany := DeltaRecord{Patches: []Patch{{}, {}, {}}, Meta: make([]byte, metaLen)}
	if err := EncodeRecord(buf, tooMany, s, metaLen); err == nil {
		t.Errorf("expected ErrTooManyPatches")
	}
	badMeta := DeltaRecord{Meta: []byte{1}}
	if err := EncodeRecord(buf, badMeta, s, metaLen); err == nil {
		t.Errorf("expected ErrBadMeta")
	}
	small := make([]byte, 2)
	ok := DeltaRecord{Meta: make([]byte, metaLen)}
	if err := EncodeRecord(small, ok, s, metaLen); err == nil {
		t.Errorf("expected ErrAreaTooSmall")
	}
}

func TestDecodeRecordBlank(t *testing.T) {
	s := Scheme{N: 1, M: 2}
	blank := bytes.Repeat([]byte{0xFF}, s.RecordSize(4))
	if _, ok := DecodeRecord(blank, s, 4); ok {
		t.Fatalf("blank slot decoded as a record")
	}
}

func TestEncodeDecodeArea(t *testing.T) {
	s := Scheme{N: 3, M: 2}
	metaLen := 6
	meta1 := []byte{1, 1, 1, 1, 1, 1}
	meta2 := []byte{2, 2, 2, 2, 2, 2}
	records := []DeltaRecord{
		{Patches: []Patch{{Offset: 10, Value: 0xA0}}, Meta: meta1},
		{Patches: []Patch{{Offset: 20, Value: 0xB0}, {Offset: 21, Value: 0xB1}}, Meta: meta2},
	}
	area, err := EncodeArea(records, s, metaLen, 0)
	if err != nil {
		t.Fatalf("EncodeArea: %v", err)
	}
	if len(area) != s.AreaSize(metaLen) {
		t.Fatalf("area size %d", len(area))
	}
	decoded := DecodeArea(area, s, metaLen)
	if len(decoded) != 2 {
		t.Fatalf("decoded %d records", len(decoded))
	}
	if CountRecords(area, s, metaLen) != 2 {
		t.Fatalf("CountRecords wrong")
	}
	// Appending at a non-zero first slot leaves earlier slots blank so the
	// image can be programmed over an existing area.
	area2, err := EncodeArea(records[1:], s, metaLen, 1)
	if err != nil {
		t.Fatalf("EncodeArea offset: %v", err)
	}
	size := s.RecordSize(metaLen)
	for i := 0; i < size; i++ {
		if area2[i] != 0xFF {
			t.Fatalf("slot 0 must stay erased")
		}
	}
	if _, err := EncodeArea(records, s, metaLen, 2); err == nil {
		t.Fatalf("expected overflow error")
	}
}

func TestApplyRecords(t *testing.T) {
	page := make([]byte, 64)
	records := []DeltaRecord{
		{Patches: []Patch{{Offset: 1, Value: 10}, {Offset: 2, Value: 20}}, Meta: []byte{1}},
		{Patches: []Patch{{Offset: 2, Value: 30}}, Meta: []byte{2}},
	}
	meta := ApplyRecords(page, records)
	if page[1] != 10 || page[2] != 30 {
		t.Fatalf("patches applied in wrong order: %v", page[:4])
	}
	if len(meta) != 1 || meta[0] != 2 {
		t.Fatalf("newest metadata not returned: %v", meta)
	}
	if m := ApplyRecords(page, nil); m != nil {
		t.Fatalf("no records should return nil meta")
	}
}

func TestSplitPatches(t *testing.T) {
	s := Scheme{N: 4, M: 2}
	meta := []byte{9}
	patches := []Patch{{Offset: 5, Value: 1}, {Offset: 1, Value: 2}, {Offset: 3, Value: 3}}
	recs := SplitPatches(patches, meta, s)
	if len(recs) != 2 {
		t.Fatalf("expected 2 records, got %d", len(recs))
	}
	var offsets []int
	for _, r := range recs {
		if len(r.Patches) > s.M {
			t.Fatalf("record exceeds M")
		}
		if !bytes.Equal(r.Meta, meta) {
			t.Fatalf("meta not attached")
		}
		for _, p := range r.Patches {
			offsets = append(offsets, int(p.Offset))
		}
	}
	if !sort.IntsAreSorted(offsets) || len(offsets) != 3 {
		t.Fatalf("patches lost or unsorted: %v", offsets)
	}
	// Metadata-only change still produces one record.
	only := SplitPatches(nil, meta, s)
	if len(only) != 1 || len(only[0].Patches) != 0 {
		t.Fatalf("metadata-only split wrong: %+v", only)
	}
}

// TestAreaRoundTripProperty: encoding arbitrary patch sets into an area and
// applying the decoded records to an erased page reproduces exactly the
// intended byte values (last write wins per offset).
func TestAreaRoundTripProperty(t *testing.T) {
	s := Scheme{N: 8, M: 8}
	metaLen := 4
	f := func(raw []uint16, values []byte) bool {
		if len(raw) > s.N*s.M {
			raw = raw[:s.N*s.M]
		}
		want := make(map[uint16]byte)
		var patches []Patch
		for i, off := range raw {
			off %= 256
			v := byte(i)
			if i < len(values) {
				v = values[i]
			}
			patches = append(patches, Patch{Offset: off, Value: v})
			want[off] = v
		}
		// SplitPatches sorts by offset, so "last write wins" collapses to
		// the map semantics above only if offsets are unique; deduplicate.
		seen := make(map[uint16]bool)
		var unique []Patch
		for _, p := range patches {
			if !seen[p.Offset] {
				seen[p.Offset] = true
				unique = append(unique, Patch{Offset: p.Offset, Value: want[p.Offset]})
			}
		}
		meta := []byte{1, 2, 3, 4}
		recs := SplitPatches(unique, meta, s)
		if len(recs) > s.N {
			return true // does not fit the scheme; nothing to check
		}
		area, err := EncodeArea(recs, s, metaLen, 0)
		if err != nil {
			return false
		}
		decoded := DecodeArea(area, s, metaLen)
		page := make([]byte, 256)
		gotMeta := ApplyRecords(page, decoded)
		for off, v := range want {
			if page[off] != v {
				return false
			}
		}
		return unique == nil || bytes.Equal(gotMeta, meta)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatalf("area round-trip property: %v", err)
	}
}
