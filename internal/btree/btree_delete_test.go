package btree

import (
	"math/rand"
	"testing"
)

// The tree deliberately does not rebalance on delete: leaves may underflow
// or empty out entirely. The tests in this file pin down the contract that
// makes the tolerate-instead-of-rebalance choice sound — Get, Ascend,
// AscendRange, Min and Max must all remain correct when scans cross
// emptied leaves, when separator keys are deleted and when the whole tree
// is hollowed out and refilled.

// TestDeleteEmptyLeavesThenAscendRange empties whole leaf runs in the
// middle and at the right edge of the tree, then range-scans across them.
func TestDeleteEmptyLeavesThenAscendRange(t *testing.T) {
	tr := New()
	for k := int64(0); k < 1000; k++ {
		tr.Insert(k, uint64(k))
	}
	// With degree 64, each of these runs empties several adjacent leaves.
	for k := int64(100); k < 400; k++ {
		if !tr.Delete(k) {
			t.Fatalf("Delete %d failed", k)
		}
	}
	for k := int64(700); k < 1000; k++ {
		if !tr.Delete(k) {
			t.Fatalf("Delete %d failed", k)
		}
	}
	var got []int64
	tr.AscendRange(50, 750, func(k int64, v uint64) bool {
		if v != uint64(k) {
			t.Fatalf("key %d carries value %d", k, v)
		}
		got = append(got, k)
		return true
	})
	var want []int64
	for k := int64(50); k < 100; k++ {
		want = append(want, k)
	}
	for k := int64(400); k < 700; k++ {
		want = append(want, k)
	}
	if len(got) != len(want) {
		t.Fatalf("scan across emptied leaves returned %d keys, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("position %d: got key %d, want %d", i, got[i], want[i])
		}
	}
	// Min/Max must skip empty leaves at either edge.
	if k, _, ok := tr.Min(); !ok || k != 0 {
		t.Fatalf("Min = %d,%v, want 0", k, ok)
	}
	if k, _, ok := tr.Max(); !ok || k != 699 {
		t.Fatalf("Max = %d,%v after emptying the right edge, want 699", k, ok)
	}
}

// TestDeleteAllThenReuse hollows the tree out completely (root stays
// internal, every leaf empty) and then refills it.
func TestDeleteAllThenReuse(t *testing.T) {
	tr := New()
	for k := int64(0); k < 500; k++ {
		tr.Insert(k, uint64(k))
	}
	for k := int64(0); k < 500; k++ {
		if !tr.Delete(k) {
			t.Fatalf("Delete %d failed", k)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", tr.Len())
	}
	if _, _, ok := tr.Min(); ok {
		t.Fatalf("Min found a key in a hollow tree")
	}
	if _, _, ok := tr.Max(); ok {
		t.Fatalf("Max found a key in a hollow tree")
	}
	n := 0
	tr.Ascend(func(int64, uint64) bool { n++; return true })
	tr.AscendRange(-10, 1000, func(int64, uint64) bool { n++; return true })
	if n != 0 {
		t.Fatalf("scans visited %d keys in a hollow tree", n)
	}
	for k := int64(0); k < 500; k += 2 {
		tr.Insert(k, uint64(k+7))
	}
	if tr.Len() != 250 {
		t.Fatalf("Len = %d after refill, want 250", tr.Len())
	}
	for k := int64(0); k < 500; k++ {
		v, ok := tr.Get(k)
		if k%2 == 0 && (!ok || v != uint64(k+7)) {
			t.Fatalf("Get %d = %d,%v after refill", k, v, ok)
		}
		if k%2 == 1 && ok {
			t.Fatalf("deleted key %d visible after refill", k)
		}
	}
	if k, _, ok := tr.Max(); !ok || k != 498 {
		t.Fatalf("Max = %d,%v after refill, want 498", k, ok)
	}
}

// TestDeleteSeparatorKeys deletes runs around likely separator positions
// (internal-node keys are not removed by Delete) and checks lookups and
// range scans still route correctly past the stale separators.
func TestDeleteSeparatorKeys(t *testing.T) {
	tr := New()
	for k := int64(0); k < 200; k++ {
		tr.Insert(k, uint64(k))
	}
	for k := int64(60); k < 70; k++ {
		tr.Delete(k)
	}
	for k := int64(120); k < 130; k++ {
		tr.Delete(k)
	}
	for k := int64(0); k < 200; k++ {
		_, ok := tr.Get(k)
		wantOK := !(k >= 60 && k < 70) && !(k >= 120 && k < 130)
		if ok != wantOK {
			t.Fatalf("Get %d ok=%v, want %v", k, ok, wantOK)
		}
	}
	got := 0
	tr.AscendRange(55, 75, func(k int64, _ uint64) bool { got++; return true })
	if got != 10 {
		t.Fatalf("range [55,75) visited %d keys, want 10", got)
	}
}

// TestDeleteReinsertRandomizedAgainstMap cross-checks a long random
// insert/delete/range-scan mix against a reference map, so any scan
// wrongness introduced by underflowing leaves would surface.
func TestDeleteReinsertRandomizedAgainstMap(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	tr := New()
	ref := map[int64]uint64{}
	for i := 0; i < 50000; i++ {
		k := int64(r.Intn(2000))
		switch r.Intn(3) {
		case 0:
			tr.Insert(k, uint64(i))
			ref[k] = uint64(i)
		case 1:
			if tr.Delete(k) != (func() bool { _, ok := ref[k]; return ok })() {
				t.Fatalf("Delete %d disagreed with reference", k)
			}
			delete(ref, k)
		case 2:
			from := int64(r.Intn(2000))
			to := from + int64(r.Intn(200))
			var got int
			tr.AscendRange(from, to, func(k int64, v uint64) bool {
				if ref[k] != v {
					t.Fatalf("key %d: value %d, reference says %d", k, v, ref[k])
				}
				got++
				return true
			})
			want := 0
			for k := from; k < to; k++ {
				if _, ok := ref[k]; ok {
					want++
				}
			}
			if got != want {
				t.Fatalf("range [%d,%d): visited %d keys, reference says %d", from, to, got, want)
			}
		}
	}
	if tr.Len() != len(ref) {
		t.Fatalf("Len = %d, reference says %d", tr.Len(), len(ref))
	}
}
