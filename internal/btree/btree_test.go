package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Fatalf("empty tree Len = %d", tr.Len())
	}
	if _, ok := tr.Get(1); ok {
		t.Fatalf("Get on empty tree must miss")
	}
	if _, _, ok := tr.Min(); ok {
		t.Fatalf("Min on empty tree must miss")
	}
	if _, _, ok := tr.Max(); ok {
		t.Fatalf("Max on empty tree must miss")
	}
	if tr.Delete(1) {
		t.Fatalf("Delete on empty tree must miss")
	}
}

func TestInsertGetSequential(t *testing.T) {
	tr := New()
	const n = 10000
	for i := int64(0); i < n; i++ {
		if !tr.Insert(i, uint64(i*2)) {
			t.Fatalf("Insert %d reported duplicate", i)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := int64(0); i < n; i++ {
		v, ok := tr.Get(i)
		if !ok || v != uint64(i*2) {
			t.Fatalf("Get %d = %d, %v", i, v, ok)
		}
	}
	if _, ok := tr.Get(n); ok {
		t.Fatalf("missing key reported present")
	}
}

func TestInsertRandomAndOverwrite(t *testing.T) {
	tr := New()
	r := rand.New(rand.NewSource(3))
	keys := r.Perm(5000)
	for _, k := range keys {
		tr.Insert(int64(k), uint64(k))
	}
	// Overwrite half the keys.
	for _, k := range keys[:2500] {
		if tr.Insert(int64(k), uint64(k)+1000000) {
			t.Fatalf("overwrite reported as new insert")
		}
	}
	if tr.Len() != 5000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for _, k := range keys[:2500] {
		if v, _ := tr.Get(int64(k)); v != uint64(k)+1000000 {
			t.Fatalf("overwrite lost")
		}
	}
}

func TestAscendOrder(t *testing.T) {
	tr := New()
	r := rand.New(rand.NewSource(9))
	for _, k := range r.Perm(3000) {
		tr.Insert(int64(k), uint64(k))
	}
	var got []int64
	tr.Ascend(func(k int64, v uint64) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 3000 {
		t.Fatalf("Ascend visited %d keys", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("Ascend not in order")
	}
	// Early termination.
	count := 0
	tr.Ascend(func(k int64, v uint64) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("Ascend did not stop: %d", count)
	}
}

func TestAscendRange(t *testing.T) {
	tr := New()
	for i := int64(0); i < 1000; i++ {
		tr.Insert(i, uint64(i))
	}
	var got []int64
	tr.AscendRange(100, 200, func(k int64, v uint64) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 100 || got[0] != 100 || got[99] != 199 {
		t.Fatalf("AscendRange wrong: %d keys, first %d last %d", len(got), got[0], got[len(got)-1])
	}
}

func TestMinMax(t *testing.T) {
	tr := New()
	for _, k := range []int64{50, 10, 99, 42} {
		tr.Insert(k, uint64(k))
	}
	if k, v, ok := tr.Min(); !ok || k != 10 || v != 10 {
		t.Fatalf("Min = %d,%d,%v", k, v, ok)
	}
	if k, v, ok := tr.Max(); !ok || k != 99 || v != 99 {
		t.Fatalf("Max = %d,%d,%v", k, v, ok)
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	for i := int64(0); i < 500; i++ {
		tr.Insert(i, uint64(i))
	}
	for i := int64(0); i < 500; i += 2 {
		if !tr.Delete(i) {
			t.Fatalf("Delete %d failed", i)
		}
	}
	if tr.Len() != 250 {
		t.Fatalf("Len after deletes = %d", tr.Len())
	}
	for i := int64(0); i < 500; i++ {
		_, ok := tr.Get(i)
		if i%2 == 0 && ok {
			t.Fatalf("deleted key %d still present", i)
		}
		if i%2 == 1 && !ok {
			t.Fatalf("kept key %d lost", i)
		}
	}
	if tr.Delete(0) {
		t.Fatalf("double delete must report absence")
	}
}

// TestTreeMatchesMapProperty: after an arbitrary sequence of inserts and
// deletes the tree agrees with a reference map, and Ascend visits keys in
// sorted order.
func TestTreeMatchesMapProperty(t *testing.T) {
	type op struct {
		Key    int16
		Delete bool
	}
	f := func(ops []op) bool {
		tr := New()
		ref := make(map[int64]uint64)
		for i, o := range ops {
			k := int64(o.Key)
			if o.Delete {
				delete(ref, k)
				tr.Delete(k)
			} else {
				ref[k] = uint64(i)
				tr.Insert(k, uint64(i))
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := tr.Get(k)
			if !ok || got != v {
				return false
			}
		}
		prev := int64(-1 << 62)
		okOrder := true
		tr.Ascend(func(k int64, v uint64) bool {
			if k <= prev {
				okOrder = false
				return false
			}
			prev = k
			return true
		})
		return okOrder
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatalf("tree/map equivalence property: %v", err)
	}
}

func BenchmarkInsert(b *testing.B) {
	tr := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Insert(int64(i), uint64(i))
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New()
	for i := int64(0); i < 100000; i++ {
		tr.Insert(i, uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(int64(i) % 100000)
	}
}
