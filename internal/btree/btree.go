// Package btree implements an in-memory B+ tree keyed by int64 with uint64
// values: the volatile search structure of the engine's primary-key index.
//
// Persistence lives one layer down, in internal/index: every key owns a
// fixed-size entry in Flash-backed entry pages, and this tree is the
// sorted directory over those entries. Inner nodes are derivable metadata,
// so they are never written to Flash — the tree is rebuilt from the entry
// pages (plus the write-ahead log) when a database is reopened, which
// keeps index recovery free of multi-page structure modifications.
package btree

import "sort"

// degree is the maximum number of children of an internal node. Leaves hold
// up to degree-1 keys.
const degree = 64

// Tree is a B+ tree mapping int64 keys to uint64 values.
type Tree struct {
	root *node
	size int
}

type node struct {
	leaf     bool
	keys     []int64
	values   []uint64 // leaves only, parallel to keys
	children []*node  // internal nodes only, len(keys)+1
	next     *node    // leaf chaining for range scans
}

// New creates an empty tree.
func New() *Tree {
	return &Tree{root: &node{leaf: true}}
}

// Len returns the number of keys stored.
func (t *Tree) Len() int { return t.size }

// Get returns the value stored under key.
func (t *Tree) Get(key int64) (uint64, bool) {
	n := t.root
	for !n.leaf {
		n = n.children[childIndex(n.keys, key)]
	}
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
	if i < len(n.keys) && n.keys[i] == key {
		return n.values[i], true
	}
	return 0, false
}

// childIndex returns the child to descend into for key.
func childIndex(keys []int64, key int64) int {
	return sort.Search(len(keys), func(i int) bool { return key < keys[i] })
}

// Insert stores value under key, replacing any previous value. It reports
// whether the key was newly inserted.
func (t *Tree) Insert(key int64, value uint64) bool {
	inserted, split, sepKey, right := t.root.insert(key, value)
	if split {
		newRoot := &node{
			keys:     []int64{sepKey},
			children: []*node{t.root, right},
		}
		t.root = newRoot
	}
	if inserted {
		t.size++
	}
	return inserted
}

// insert returns (newKey, didSplit, separatorKey, rightSibling).
func (n *node) insert(key int64, value uint64) (bool, bool, int64, *node) {
	if n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
		if i < len(n.keys) && n.keys[i] == key {
			n.values[i] = value
			return false, false, 0, nil
		}
		n.keys = append(n.keys, 0)
		n.values = append(n.values, 0)
		copy(n.keys[i+1:], n.keys[i:])
		copy(n.values[i+1:], n.values[i:])
		n.keys[i] = key
		n.values[i] = value
		if len(n.keys) < degree {
			return true, false, 0, nil
		}
		sep, right := n.splitLeaf()
		return true, true, sep, right
	}
	ci := childIndex(n.keys, key)
	inserted, split, sepKey, right := n.children[ci].insert(key, value)
	if split {
		n.keys = append(n.keys, 0)
		copy(n.keys[ci+1:], n.keys[ci:])
		n.keys[ci] = sepKey
		n.children = append(n.children, nil)
		copy(n.children[ci+2:], n.children[ci+1:])
		n.children[ci+1] = right
		if len(n.children) > degree {
			sep, r := n.splitInternal()
			return inserted, true, sep, r
		}
	}
	return inserted, false, 0, nil
}

// splitLeaf splits a full leaf and returns the separator key and the new
// right sibling.
func (n *node) splitLeaf() (int64, *node) {
	mid := len(n.keys) / 2
	right := &node{
		leaf:   true,
		keys:   append([]int64(nil), n.keys[mid:]...),
		values: append([]uint64(nil), n.values[mid:]...),
		next:   n.next,
	}
	n.keys = n.keys[:mid:mid]
	n.values = n.values[:mid:mid]
	n.next = right
	return right.keys[0], right
}

// splitInternal splits a full internal node.
func (n *node) splitInternal() (int64, *node) {
	mid := len(n.keys) / 2
	sep := n.keys[mid]
	right := &node{
		keys:     append([]int64(nil), n.keys[mid+1:]...),
		children: append([]*node(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return sep, right
}

// Delete removes key and reports whether it was present. The tree
// tolerates underflow instead of rebalancing: leaves may empty out and
// separator keys may go stale, but Get, Ascend, AscendRange, Min and Max
// all remain correct (scans skip empty leaves via the leaf chain; see the
// tests in btree_delete_test.go). The trade-off is memory: node count
// shrinks only when emptied key ranges are reinserted, so the tree's
// footprint tracks its high-water mark rather than its live size — fine
// for a buffer-cached primary-key index whose key space is reused, which
// is exactly how the engine employs it.
func (t *Tree) Delete(key int64) bool {
	n := t.root
	for !n.leaf {
		n = n.children[childIndex(n.keys, key)]
	}
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
	if i >= len(n.keys) || n.keys[i] != key {
		return false
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.values = append(n.values[:i], n.values[i+1:]...)
	t.size--
	return true
}

// AscendRange calls fn for every key in [from, to), in ascending order,
// until fn returns false.
func (t *Tree) AscendRange(from, to int64, fn func(key int64, value uint64) bool) {
	n := t.root
	for !n.leaf {
		n = n.children[childIndex(n.keys, from)]
	}
	for n != nil {
		for i, k := range n.keys {
			if k < from {
				continue
			}
			if k >= to {
				return
			}
			if !fn(k, n.values[i]) {
				return
			}
		}
		n = n.next
	}
}

// Ascend calls fn for every key in ascending order until fn returns false.
func (t *Tree) Ascend(fn func(key int64, value uint64) bool) {
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	for n != nil {
		for i, k := range n.keys {
			if !fn(k, n.values[i]) {
				return
			}
		}
		n = n.next
	}
}

// Min returns the smallest key, or false if the tree is empty.
func (t *Tree) Min() (int64, uint64, bool) {
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	for n != nil {
		if len(n.keys) > 0 {
			return n.keys[0], n.values[0], true
		}
		n = n.next
	}
	return 0, 0, false
}

// Max returns the largest key, or false if the tree is empty.
func (t *Tree) Max() (int64, uint64, bool) {
	n := t.root
	for !n.leaf {
		n = n.children[len(n.children)-1]
	}
	// The rightmost leaf may be empty after deletions; walk leaves from the
	// left to find the last non-empty one in that rare case.
	if len(n.keys) > 0 {
		return n.keys[len(n.keys)-1], n.values[len(n.keys)-1], true
	}
	var bestK int64
	var bestV uint64
	found := false
	t.Ascend(func(k int64, v uint64) bool {
		bestK, bestV, found = k, v, true
		return true
	})
	return bestK, bestV, found
}
