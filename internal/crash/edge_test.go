package crash

import (
	"errors"
	"sync"
	"testing"
	"time"

	"ipa"
)

// TestCrashDuringGroupCommitLeaderFlush kills the log device while a
// group-commit leader is flushing on behalf of concurrent committers: every
// transaction in the doomed batch must report the failure and be rolled
// back by recovery, while transactions from earlier batches stay durable.
func TestCrashDuringGroupCommitLeaderFlush(t *testing.T) {
	const (
		workers     = 4
		keysPerWkr  = 4
		opsPerWkr   = 200
		crashAtFlsh = 25
	)
	plan := ipa.NewFaultPlan(crashAtFlsh, ipa.CrashBefore)
	plan.SetKinds(ipa.OpLogFlush)
	cfg := ipa.Config{
		PageSize:        2048,
		Blocks:          16,
		PagesPerBlock:   16,
		BufferPoolPages: 32,
		WriteMode:       ipa.IPANativeFlash,
		Scheme:          ipa.Scheme{N: 2, M: 4},
		FlashMode:       ipa.PSLC,
		// A real wall-clock cost per log flush so concurrent commits pile
		// up behind the leader and ride shared batches.
		LogFlushWallLatency: 200 * time.Microsecond,
		Faults:              plan,
	}
	db, err := ipa.Open(cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	table, err := db.CreateTable("balances", accountSize)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	// Load all worker keys in one transaction (one log flush).
	tx := db.Begin()
	for k := 0; k < workers*keysPerWkr; k++ {
		row := make([]byte, accountSize)
		putKey(row, keyOffset, int64(k))
		putKey(row, balanceOffset, initialBalance)
		if err := tx.Insert(table, int64(k), row); err != nil {
			t.Fatalf("load insert: %v", err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("load commit: %v", err)
	}

	// committed[k] is the last balance whose commit SUCCEEDED for key k.
	committed := make([]int64, workers*keysPerWkr)
	for i := range committed {
		committed[i] = initialBalance
	}
	var failedCommits int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerWkr; i++ {
				key := int64(w*keysPerWkr + i%keysPerWkr)
				delta := int64(w*1000 + i + 1)
				tx := db.Begin()
				mu.Lock()
				cur := committed[key]
				mu.Unlock()
				row := make([]byte, 8)
				putKey(row, 0, cur+delta)
				if err := tx.UpdateAt(table, key, balanceOffset, row); err != nil {
					if isPowerLoss(err) || errors.Is(err, ipa.ErrClosed) {
						return
					}
					if errors.Is(err, ipa.ErrConflict) {
						_ = tx.Abort()
						continue
					}
					t.Errorf("worker %d: update: %v", w, err)
					return
				}
				if err := tx.Commit(); err != nil {
					mu.Lock()
					failedCommits++
					mu.Unlock()
					if isPowerLoss(err) || errors.Is(err, ipa.ErrClosed) {
						return
					}
					t.Errorf("worker %d: commit: %v", w, err)
					return
				}
				mu.Lock()
				committed[key] = cur + delta
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if !plan.Tripped() {
		t.Fatalf("the log-flush fault never fired (%d flush points seen)", plan.Ops())
	}

	img := db.Crash()
	db2, err := ipa.Reopen(img)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	if err := db2.VerifyIntegrity(); err != nil {
		t.Fatalf("integrity: %v", err)
	}
	t2, ok := db2.Table("balances")
	if !ok {
		t.Fatalf("table missing after reopen")
	}
	for k := range committed {
		row, err := t2.Get(int64(k))
		if err != nil {
			t.Fatalf("key %d: %v", k, err)
		}
		if got := getKey(row, balanceOffset); got != committed[k] {
			t.Errorf("key %d: balance %d after recovery, committed state says %d", k, got, committed[k])
		}
	}
	t.Logf("flush points=%d failed commits=%d", plan.Ops(), failedCommits)
}

// TestCrashMidGCOnMultiChipDevice sweeps crash points through the late,
// GC-active phase of a multi-chip run: a power cut between a garbage
// collector's copy-back and its erase (or mid-erase, torn) on one chip must
// not disturb recovery on any chip.
func TestCrashMidGCOnMultiChipDevice(t *testing.T) {
	o := DefaultOptions()
	o.DB.Chips = 4
	o.DB.Blocks = 7
	o.Ops = 600
	o.PostOps = 4

	db, st, err := ReferenceRun(o)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	db.Close()
	if st.GCRuns == 0 || st.FlashBlockErases == 0 {
		t.Fatalf("reference run never garbage-collected (gcRuns=%d erases=%d); harness miscalibrated", st.GCRuns, st.FlashBlockErases)
	}
	perChip := 0
	for _, c := range st.ChipStats {
		if c.GCRuns > 0 {
			perChip++
		}
	}
	if perChip == 0 {
		t.Fatalf("no chip reports GC activity")
	}

	total, err := Enumerate(o)
	if err != nil {
		t.Fatalf("enumerate: %v", err)
	}
	// GC happens in the churn-heavy tail: sweep the last quarter.
	start := total - total/4
	step := total / 40
	if step == 0 {
		step = 1
	}
	gcCovered := false
	for _, mode := range []ipa.FaultMode{ipa.CrashBefore, ipa.CrashTorn, ipa.CrashAfter} {
		for k := start; k <= total; k += step {
			gcRuns, tripped, err := RunPoint(o, k, mode)
			if err != nil {
				t.Fatalf("point %d (%v): %v", k, mode, err)
			}
			if tripped && gcRuns > 0 {
				gcCovered = true
			}
		}
	}
	if !gcCovered {
		t.Fatalf("no tested crash point fell into the GC-active phase")
	}
}

// TestDoubleCrashDuringRecovery crashes the device again while the FIRST
// recovery is replaying (scrubs, redo writes, final flush), then recovers
// from the second crash. Recovery must be idempotent.
func TestDoubleCrashDuringRecovery(t *testing.T) {
	o := DefaultOptions()
	o.Ops = 150
	total, err := Enumerate(o)
	if err != nil {
		t.Fatalf("enumerate: %v", err)
	}
	k := total * 2 / 3
	plan := ipa.NewFaultPlan(k, ipa.CrashTorn)
	cfg := o.DB
	cfg.Faults = plan
	d, err := newDriver(cfg, o)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	runErr := d.load()
	if runErr == nil {
		runErr = d.run(o.Ops, o.Readers)
	}
	if runErr != nil && !isPowerLoss(runErr) {
		t.Fatalf("workload: %v", runErr)
	}
	if !plan.Tripped() {
		t.Fatalf("first fault never fired")
	}
	img := d.db.Crash()

	// Second crash: re-arm the plan so recovery's own device writes trip.
	secondCrashes := 0
	var db2 *ipa.DB
	for j := uint64(1); ; j += 2 {
		plan.Arm(j, ipa.CrashBefore)
		db2, err = ipa.Reopen(img)
		if err == nil {
			break
		}
		if !isPowerLoss(err) {
			t.Fatalf("reopen after double crash: %v", err)
		}
		secondCrashes++
		if secondCrashes > 200 {
			t.Fatalf("recovery never completed under repeated crashes")
		}
	}
	defer db2.Close()
	if secondCrashes == 0 {
		t.Fatalf("recovery performed no faultable work; double-crash path untested")
	}
	plan.Disarm()
	if err := verify(db2, o, d.ora); err != nil {
		t.Fatalf("verify after double crash (%d recovery crashes): %v", secondCrashes, err)
	}
	t.Logf("recovery survived %d crashes before completing", secondCrashes)
}

// TestAbortedUpdateResidueRepairedByRecovery pins down the recovery rule
// for transactions that aborted BEFORE the crash: their flushed update
// residue is erased by redo repeating committed history from the insert
// forward — it must NOT be undone with before-images, or a transaction that
// committed after the abort would be clobbered.
func TestAbortedUpdateResidueRepairedByRecovery(t *testing.T) {
	o := DefaultOptions()
	db, err := ipa.Open(o.DB)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	table, err := db.CreateTable("kv", accountSize)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	row := make([]byte, accountSize)
	putKey(row, keyOffset, 1)
	putKey(row, balanceOffset, initialBalance)
	tx := db.Begin()
	if err := tx.Insert(table, 1, row); err != nil {
		t.Fatalf("insert: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit insert: %v", err)
	}

	// Aborted update whose dirty page reaches Flash before the rollback.
	tx = db.Begin()
	bad := make([]byte, 8)
	putKey(bad, 0, int64(-777))
	if err := tx.UpdateAt(table, 1, balanceOffset, bad); err != nil {
		t.Fatalf("update: %v", err)
	}
	if err := db.FlushAll(); err != nil {
		t.Fatalf("flush with uncommitted update: %v", err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatalf("abort: %v", err)
	}

	// A later transaction commits a different value on the same bytes; the
	// crash hits before that page is flushed again.
	tx = db.Begin()
	good := make([]byte, 8)
	putKey(good, 0, int64(424242))
	if err := tx.UpdateAt(table, 1, balanceOffset, good); err != nil {
		t.Fatalf("committed update: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}

	db2, err := ipa.Reopen(db.Crash())
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	t2, _ := db2.Table("kv")
	got, err := t2.Get(1)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if v := getKey(got, balanceOffset); v != 424242 {
		t.Fatalf("balance %d after recovery; aborted residue must lose to the committed value 424242", v)
	}
}

// TestAbortedUpdateResidueWithoutLaterCommit is the same scenario with no
// later committed writer: the flushed aborted value must fall back to the
// committed insert's value.
func TestAbortedUpdateResidueWithoutLaterCommit(t *testing.T) {
	o := DefaultOptions()
	db, err := ipa.Open(o.DB)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	table, err := db.CreateTable("kv", accountSize)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	row := make([]byte, accountSize)
	putKey(row, keyOffset, 1)
	putKey(row, balanceOffset, initialBalance)
	tx := db.Begin()
	if err := tx.Insert(table, 1, row); err != nil {
		t.Fatalf("insert: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit insert: %v", err)
	}
	tx = db.Begin()
	bad := make([]byte, 8)
	putKey(bad, 0, int64(-777))
	if err := tx.UpdateAt(table, 1, balanceOffset, bad); err != nil {
		t.Fatalf("update: %v", err)
	}
	if err := db.FlushAll(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatalf("abort: %v", err)
	}

	db2, err := ipa.Reopen(db.Crash())
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	t2, _ := db2.Table("kv")
	got, err := t2.Get(1)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if v := getKey(got, balanceOffset); v != initialBalance {
		t.Fatalf("balance %d after recovery, want the inserted value %d", v, initialBalance)
	}
}

// TestSweepAllWriteModes runs a small sample sweep under every write path:
// the baseline, IPA over a conventional SSD and IPA on native Flash.
func TestSweepAllWriteModes(t *testing.T) {
	for _, mode := range []ipa.WriteMode{ipa.Traditional, ipa.IPAConventionalSSD, ipa.IPANativeFlash} {
		t.Run(mode.String(), func(t *testing.T) {
			o := DefaultOptions()
			o.DB.WriteMode = mode
			o.Ops = 80
			o.Sample = 6
			res, err := Sweep(o)
			if err != nil {
				t.Fatalf("sweep: %v", err)
			}
			for _, f := range res.Failures {
				t.Errorf("%s: %s", mode, f)
			}
			if res.Crashes == 0 {
				t.Fatalf("no crash fired")
			}
		})
	}
}
