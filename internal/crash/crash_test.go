package crash

import (
	"testing"

	"ipa"
)

// TestCleanCrashRecovers covers the "kill -9 without any device fault"
// case: crash after a completed run, reopen, verify.
func TestCleanCrashRecovers(t *testing.T) {
	o := DefaultOptions()
	o.Ops = 60
	d, err := newDriver(o.DB, o)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := d.load(); err != nil {
		t.Fatalf("load: %v", err)
	}
	if err := d.run(o.Ops, o.Readers); err != nil {
		t.Fatalf("run: %v", err)
	}
	if d.audits == 0 {
		t.Fatalf("snapshot readers completed no audit pass")
	}
	img := d.db.Crash()
	db2, err := ipa.Reopen(img)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	if err := verify(db2, o, d.ora); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

// TestEnumerateCountsFaultPoints sanity-checks the fault-point enumeration.
func TestEnumerateCountsFaultPoints(t *testing.T) {
	o := DefaultOptions()
	o.Ops = 30
	total, err := Enumerate(o)
	if err != nil {
		t.Fatalf("enumerate: %v", err)
	}
	if total == 0 {
		t.Fatalf("no fault points enumerated")
	}
	t.Logf("fault points for %d transactions: %d", o.Ops, total)
}

// TestCrashSweepSample runs a bounded, evenly spread sample of the
// exhaustive sweep in every fault mode (the CI quick gate). The exhaustive
// sweep runs via `ipabench -exp crash`.
func TestCrashSweepSample(t *testing.T) {
	o := DefaultOptions()
	o.Ops = 60
	o.Sample = 12
	if testing.Short() {
		o.Sample = 4
	}
	res, err := Sweep(o)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	for _, f := range res.Failures {
		t.Errorf("invariant violated: %s", f)
	}
	if res.Crashes == 0 {
		t.Fatalf("sweep never crashed (%d runs over %d points)", res.Runs, res.FaultPoints)
	}
	// The periodic checkpoints must actually run during the sweep, some
	// crash points must land after one (so recovery starts from it, not
	// LSN 0), and every successful Reopen reports its cost.
	if res.Checkpoints == 0 {
		t.Fatalf("sweep took no fuzzy checkpoints")
	}
	if !res.CkptCovered {
		t.Fatalf("no crash point fired after a checkpoint completed")
	}
	if res.Recovery.Recoveries == 0 {
		t.Fatalf("sweep recorded no recovery cost")
	}
	if res.Recovery.FromCheckpoint == 0 {
		t.Fatalf("no recovery started from a checkpoint (%d recoveries)", res.Recovery.Recoveries)
	}
	t.Logf("points=%d runs=%d crashes=%d gcCovered=%v ckpts=%d fromCkpt=%d/%d redone=%d",
		res.FaultPoints, res.Runs, res.Crashes, res.GCCovered, res.Checkpoints,
		res.Recovery.FromCheckpoint, res.Recovery.Recoveries, res.Recovery.RecordsRedone)
}
