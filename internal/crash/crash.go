// Package crash implements the deterministic power-cut torture harness:
// it runs a TPC-B style workload — with secondary-index maintenance mixed
// in (accounts indexed by balance, history rows by account) — against an
// engine with a fault plan attached, crashes the simulated device at
// every enumerated fault point (every program, erase and log flush —
// optionally torn mid-operation), reopens the database from the surviving
// Flash image and durable log, and verifies the recovery invariants
// against an exact oracle:
//
//   - every transaction whose Commit returned success is fully visible,
//   - every in-flight, aborted or commit-interrupted transaction is fully
//     rolled back (updates restored, inserted tuples gone, index entries
//     reversed — secondary entry moves included),
//   - the FTL mapping and every page checksum validate, every index is a
//     bijection onto the live heap tuples (VerifyIntegrity), and
//   - the reopened database keeps working (more transactions commit).
//
// The oracle is exact because the *writing* workload is single-threaded
// and seeded: the harness mirrors every committed transaction's effect in
// memory and compares the recovered database against it key by key. On
// top of the writer, concurrent snapshot readers (Options.Readers) run
// lock-free MVCC read transactions during the crash-prone phase: each
// sums every account, teller and branch balance inside one transaction
// and checks that the three totals describe the same committed prefix of
// the workload — a torn read (a cut through the middle of a transaction)
// or a total the single-threaded oracle never produced fails the run.
// The readers stop when the injected fault fires and are joined before
// the crash, so the oracle stays exact.
package crash

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"ipa"
)

// Tuple layout of the harness tables: int64 key at offset 0, int64
// balance at offset 8. (Recovery no longer needs the key embedded in the
// tuple — indexes are recovered from their own entry pages and the WAL —
// but the oracle reads both fields back to verify them.)
const (
	keyOffset     = 0
	balanceOffset = 8
	// historyAccountOffset is where history rows store their account id;
	// it coincides with balanceOffset numerically but names a different
	// field of a different layout (runOne writes the account id there).
	historyAccountOffset = 8
	accountSize          = 64
	historySize          = 48

	initialBalance = int64(1_000_000_007)
	loadBatch      = 32
)

// Options configure a torture sweep.
type Options struct {
	// DB is the engine configuration under test (write mode, scheme,
	// flash mode, device sizing, chips). The Faults field is overwritten
	// by the harness.
	DB ipa.Config
	// Branches, Tellers and Accounts size the TPC-B style schema.
	Branches int
	Tellers  int
	Accounts int
	// Ops is the number of transactions attempted per run.
	Ops int
	// Seed drives the deterministic transaction mix.
	Seed int64
	// Modes are the fault modes applied at every tested point.
	Modes []ipa.FaultMode
	// Sample bounds the fault points tested per mode, spread evenly over
	// the enumeration (0 tests every point — the exhaustive sweep).
	Sample int
	// Kinds restricts which operations count as fault points (0 = all).
	Kinds ipa.FaultOp
	// PostOps is the number of extra transactions committed on the
	// reopened database to prove it stays usable (default 8).
	PostOps int
	// Readers is the number of concurrent snapshot-reader goroutines that
	// audit TPC-B conservation during the crash-prone transaction phase
	// (default 2; negative disables them). Readers use lock-free MVCC
	// reads only, so the single-threaded write oracle stays exact.
	Readers int
	// CheckpointEvery takes a synchronous fuzzy checkpoint every N writer
	// transactions (default 25; negative disables checkpoints). Each
	// checkpoint adds its own fault points to the enumeration — the WAL
	// flush of the checkpoint record, the catalog page program and the
	// segment-recycle step — so the sweep proves recovery from a crash at
	// any of them, and that recovery restarts from the checkpoint rather
	// than LSN 0.
	CheckpointEvery int
}

// DefaultOptions returns a small-device configuration whose exhaustive
// sweep finishes quickly while still exercising evictions, in-place
// appends, garbage collection and group commit.
func DefaultOptions() Options {
	return Options{
		DB: ipa.Config{
			PageSize:        2048,
			Blocks:          12,
			PagesPerBlock:   16,
			BufferPoolPages: 8, // small pool: evictions (and appends) on almost every transaction
			WriteMode:       ipa.IPANativeFlash,
			Scheme:          ipa.Scheme{N: 2, M: 4},
			FlashMode:       ipa.PSLC,
			Seed:            1,
		},
		Branches: 4,
		Tellers:  20,
		Accounts: 400,
		Ops:      220,
		Seed:     7,
		Modes:    []ipa.FaultMode{ipa.CrashBefore, ipa.CrashTorn, ipa.CrashAfter},
		PostOps:  8,
		Readers:  2,
	}
}

func (o Options) withDefaults() Options {
	if o.Branches <= 0 {
		o.Branches = 4
	}
	if o.Tellers <= 0 {
		o.Tellers = 20
	}
	if o.Accounts <= 0 {
		o.Accounts = 200
	}
	if o.Ops <= 0 {
		o.Ops = 150
	}
	if o.Seed == 0 {
		o.Seed = 7
	}
	if len(o.Modes) == 0 {
		o.Modes = []ipa.FaultMode{ipa.CrashBefore, ipa.CrashTorn, ipa.CrashAfter}
	}
	if o.PostOps <= 0 {
		o.PostOps = 8
	}
	if o.Readers == 0 {
		o.Readers = 2
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = 25
	}
	return o
}

// RecoverySummary aggregates the Reopen cost over a sweep's runs — the
// time-to-recover evidence behind the fuzzy-checkpoint work.
type RecoverySummary struct {
	Recoveries     int           `json:"recoveries"`      // Reopen calls that succeeded
	FromCheckpoint int           `json:"from_checkpoint"` // recoveries that restarted from a checkpoint, not LSN 0
	Wall           time.Duration `json:"wall_ns"`         // total wall-clock time spent recovering
	Virtual        time.Duration `json:"virtual_ns"`      // total virtual (device) recovery time
	PagesScanned   uint64        `json:"pages_scanned"`   // physical pages the FTL rebuilds inspected
	RecordsRedone  uint64        `json:"records_redone"`  // redo/compensation/undo operations replayed
}

// Result summarises a sweep.
type Result struct {
	FaultPoints int  // enumerated fault points of the reference run
	Runs        int  // crash-recover-verify cycles executed
	Crashes     int  // runs in which the fault actually fired
	GCCovered   bool // some crash happened after garbage collection ran
	Checkpoints int  // fuzzy checkpoints completed across all runs
	CkptCovered bool // some crash happened after a checkpoint completed
	Recovery    RecoverySummary
	Failures    []string
}

// Failed reports whether any invariant was violated.
func (r Result) Failed() bool { return len(r.Failures) > 0 }

// oracle mirrors the state every committed transaction produced. The
// loaded counters record how many rows of each table were inserted by
// batches whose commit succeeded — rows beyond them must be absent after
// recovery (their load batch never committed).
type oracle struct {
	accounts []int64
	tellers  []int64
	branches []int64
	loadedA  int
	loadedT  int
	loadedB  int
	history  map[int64][2]int64 // history key -> (account, delta)
	liveHist []int64            // committed, not-yet-deleted history keys in insertion order
	nextHist int64

	// totals is the audit ledger for the concurrent snapshot readers: the
	// cumulative TPC-B delta sum after every prefix of attempted commits.
	// An entry is recorded BEFORE Commit is called — a committed state
	// becomes reader-visible inside Commit, so recording after it returns
	// would race the reader that snapshots in between. The cost is a
	// phantom entry when a commit fails (its state never becomes visible,
	// so no reader can match it; the check merely has one dead entry).
	// cum is the confirmed cumulative delta; only the writer thread
	// touches it, so it needs no lock.
	totalsMu sync.Mutex
	totals   []int64
	cum      int64
}

func newOracle(o Options) *oracle {
	ora := &oracle{
		accounts: make([]int64, o.Accounts),
		tellers:  make([]int64, o.Tellers),
		branches: make([]int64, o.Branches),
		history:  make(map[int64][2]int64),
		totals:   []int64{0},
	}
	for i := range ora.accounts {
		ora.accounts[i] = initialBalance
	}
	for i := range ora.tellers {
		ora.tellers[i] = initialBalance
	}
	for i := range ora.branches {
		ora.branches[i] = initialBalance
	}
	return ora
}

// noteTotal records a cumulative delta total the database may expose from
// now on (called by the writer just before each balance-moving Commit).
func (o *oracle) noteTotal(v int64) {
	o.totalsMu.Lock()
	o.totals = append(o.totals, v)
	o.totalsMu.Unlock()
}

// totalSeen reports whether v is the cumulative total of some prefix of
// the attempted commits. Newest-first: readers usually observe a recent
// state.
func (o *oracle) totalSeen(v int64) bool {
	o.totalsMu.Lock()
	defer o.totalsMu.Unlock()
	for i := len(o.totals) - 1; i >= 0; i-- {
		if o.totals[i] == v {
			return true
		}
	}
	return false
}

// driver runs the workload against one database instance.
type driver struct {
	opts   Options
	db     *ipa.DB
	ora    *oracle
	loaded bool
	audits uint64 // successful snapshot-reader audit passes of the last run
	ckpts  int    // fuzzy checkpoints completed

	accounts *ipa.Table
	tellers  *ipa.Table
	branches *ipa.Table
	history  *ipa.Table
}

func newDriver(cfg ipa.Config, o Options) (*driver, error) {
	db, err := ipa.Open(cfg)
	if err != nil {
		return nil, err
	}
	return &driver{opts: o, db: db, ora: newOracle(o)}, nil
}

func putKey(row []byte, off int, v int64) {
	binary.LittleEndian.PutUint64(row[off:], uint64(v))
}

func getKey(row []byte, off int) int64 {
	return int64(binary.LittleEndian.Uint64(row[off:]))
}

func fillRow(row []byte, seed int64) {
	x := uint64(seed)*0x9E3779B97F4A7C15 + 1
	for i := 16; i < len(row); i++ {
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		row[i] = byte(x >> 56)
	}
}

// load creates the schema and populates it through transactions (crash
// recovery only covers logged work), committing in small batches so load
// crashes leave a recoverable prefix.
//
// Two secondary indexes are created before any row exists, so every one
// of their maintenance operations is transactional and enumerable as a
// fault point: accounts are indexed by balance (every TPC-B update moves
// the entry — the update-ripple path), history rows by their account
// (insert/delete churn).
func (d *driver) load() error {
	var err error
	if d.accounts, err = d.db.CreateTable("accounts", accountSize); err != nil {
		return err
	}
	if d.tellers, err = d.db.CreateTable("tellers", accountSize); err != nil {
		return err
	}
	if d.branches, err = d.db.CreateTable("branches", accountSize); err != nil {
		return err
	}
	if d.history, err = d.db.CreateTableWithScheme("history", historySize, ipa.Scheme{}); err != nil {
		return err
	}
	if _, err = d.accounts.CreateSecondaryIndex("balance", ipa.Int64Field(balanceOffset)); err != nil {
		return err
	}
	if _, err = d.history.CreateSecondaryIndex("by_account", ipa.Int64Field(historyAccountOffset)); err != nil {
		return err
	}
	load := func(t *ipa.Table, n int, loaded *int) error {
		for start := 0; start < n; start += loadBatch {
			end := start + loadBatch
			if end > n {
				end = n
			}
			tx := d.db.Begin()
			for i := start; i < end; i++ {
				row := make([]byte, accountSize)
				fillRow(row, int64(i)+int64(t.ID())*1000)
				putKey(row, keyOffset, int64(i))
				putKey(row, balanceOffset, initialBalance)
				if err := tx.Insert(t, int64(i), row); err != nil {
					return err
				}
			}
			if err := tx.Commit(); err != nil {
				return err
			}
			*loaded = end
		}
		return nil
	}
	if err := load(d.branches, d.opts.Branches, &d.ora.loadedB); err != nil {
		return err
	}
	if err := load(d.tellers, d.opts.Tellers, &d.ora.loadedT); err != nil {
		return err
	}
	if err := load(d.accounts, d.opts.Accounts, &d.ora.loadedA); err != nil {
		return err
	}
	d.loaded = true
	return nil
}

// runOne executes one transaction — usually the TPC-B style
// update/update/update/insert, but every sixth op (once history rows
// exist) a transactional delete of a committed history row, so the sweep
// also enumerates the index-delete and tuple-delete fault points — and
// mirrors it in the oracle if (and only if) the commit succeeded.
func (d *driver) runOne(r *rand.Rand) error {
	if r.Intn(6) == 0 && len(d.ora.liveHist) > 0 {
		return d.deleteOne(r)
	}
	a := r.Intn(d.opts.Accounts)
	t := r.Intn(d.opts.Tellers)
	b := r.Intn(d.opts.Branches)
	delta := int64(r.Intn(1999999) - 999999)
	d.ora.nextHist++
	hid := d.ora.nextHist

	tx := d.db.Begin()
	update := func(tbl *ipa.Table, key int64, cur int64) error {
		row := make([]byte, 8)
		putKey(row, 0, cur+delta)
		return tx.UpdateAt(tbl, key, balanceOffset, row)
	}
	if err := update(d.accounts, int64(a), d.ora.accounts[a]); err != nil {
		return err
	}
	if err := update(d.tellers, int64(t), d.ora.tellers[t]); err != nil {
		return err
	}
	if err := update(d.branches, int64(b), d.ora.branches[b]); err != nil {
		return err
	}
	hrow := make([]byte, historySize)
	fillRow(hrow, hid)
	putKey(hrow, keyOffset, hid)
	putKey(hrow, historyAccountOffset, int64(a))
	putKey(hrow, 16, delta)
	if err := tx.Insert(d.history, hid, hrow); err != nil {
		return err
	}
	d.ora.noteTotal(d.ora.cum + delta)
	if err := tx.Commit(); err != nil {
		return err
	}
	d.ora.cum += delta
	d.ora.accounts[a] += delta
	d.ora.tellers[t] += delta
	d.ora.branches[b] += delta
	d.ora.history[hid] = [2]int64{int64(a), delta}
	d.ora.liveHist = append(d.ora.liveHist, hid)
	return nil
}

// deleteOne removes one committed history row through a transaction and
// mirrors the deletion in the oracle only if the commit succeeded.
func (d *driver) deleteOne(r *rand.Rand) error {
	idx := r.Intn(len(d.ora.liveHist))
	hid := d.ora.liveHist[idx]
	tx := d.db.Begin()
	if err := tx.Delete(d.history, hid); err != nil {
		return err
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	d.ora.liveHist = append(d.ora.liveHist[:idx], d.ora.liveHist[idx+1:]...)
	delete(d.ora.history, hid)
	return nil
}

// run executes ops transactions. With readers > 0 (and the schema fully
// loaded) that many concurrent snapshot readers audit TPC-B conservation
// while the writer works; they are joined before run returns, so the
// caller can crash the device with no goroutine still touching it. An
// audit violation is reported even when the writer ended with the
// expected injected power cut — a torn snapshot must fail the point.
func (d *driver) run(ops, readers int) error {
	var pool *readerPool
	if readers > 0 && d.loaded {
		pool = d.startReaders(readers)
	}
	r := rand.New(rand.NewSource(d.opts.Seed))
	var err error
	for i := 0; i < ops; i++ {
		if err = d.runOne(r); err != nil {
			break
		}
		// Synchronous fuzzy checkpoints: the writer takes them in-line so
		// their fault points (checkpoint-record flush, catalog program,
		// segment recycle) land at deterministic positions in the
		// enumeration.
		if d.opts.CheckpointEvery > 0 && (i+1)%d.opts.CheckpointEvery == 0 {
			if _, cerr := d.db.Checkpoint(); cerr != nil {
				err = cerr
				break
			}
			d.ckpts++
		}
	}
	if pool != nil {
		verr := pool.stopAndJoin()
		d.audits = pool.passes.Load()
		if verr != nil && (err == nil || isPowerLoss(err)) {
			return verr
		}
	}
	return err
}

// errTornSnapshot tags an invariant violation observed by a concurrent
// snapshot reader.
var errTornSnapshot = errors.New("crash: snapshot reader observed inconsistent state")

// readerPool manages the concurrent snapshot-reader goroutines.
type readerPool struct {
	stop   chan struct{}
	wg     sync.WaitGroup
	passes atomic.Uint64

	mu        sync.Mutex
	violation error
}

// startReaders launches n goroutines that repeatedly audit the TPC-B
// conservation invariant through lock-free snapshot reads. A reader exits
// on the first device error (the injected power cut reaches readers too)
// or on the first violation, which stopAndJoin reports.
func (d *driver) startReaders(n int) *readerPool {
	p := &readerPool{stop: make(chan struct{})}
	for i := 0; i < n; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for {
				select {
				case <-p.stop:
					return
				default:
				}
				err := d.auditOnce()
				if err == nil {
					p.passes.Add(1)
					continue
				}
				if isPowerLoss(err) || errors.Is(err, ipa.ErrClosed) {
					return // the fault fired; the device is gone
				}
				p.mu.Lock()
				if p.violation == nil {
					p.violation = err
				}
				p.mu.Unlock()
				return
			}
		}()
	}
	return p
}

// stopAndJoin stops the readers, waits for them and returns the first
// violation any of them observed.
func (p *readerPool) stopAndJoin() error {
	close(p.stop)
	p.wg.Wait()
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.violation
}

// auditOnce sums every account, teller and branch balance inside ONE read
// transaction — a single MVCC snapshot — and checks that the three delta
// sums agree and describe a prefix of the attempted commits. The
// transaction is aborted, not committed: a read-only abort touches no
// device (no log flush), so readers add no fault points of their own.
func (d *driver) auditOnce() error {
	tx := d.db.Begin()
	defer func() { _ = tx.Abort() }()
	sum := func(t *ipa.Table, n int) (int64, error) {
		var s int64
		for k := 0; k < n; k++ {
			row, err := tx.Get(t, int64(k))
			if err != nil {
				return 0, err
			}
			s += getKey(row, balanceOffset)
		}
		return s, nil
	}
	sa, err := sum(d.accounts, d.opts.Accounts)
	if err != nil {
		return err
	}
	st, err := sum(d.tellers, d.opts.Tellers)
	if err != nil {
		return err
	}
	sb, err := sum(d.branches, d.opts.Branches)
	if err != nil {
		return err
	}
	da := sa - int64(d.opts.Accounts)*initialBalance
	dt := st - int64(d.opts.Tellers)*initialBalance
	db := sb - int64(d.opts.Branches)*initialBalance
	if da != dt || dt != db {
		return fmt.Errorf("%w: torn cut — account/teller/branch delta sums %d/%d/%d diverge", errTornSnapshot, da, dt, db)
	}
	if !d.ora.totalSeen(da) {
		return fmt.Errorf("%w: delta total %d matches no prefix of the committed transactions", errTornSnapshot, da)
	}
	return nil
}

// verify compares a (re)opened database against the oracle.
func verify(db *ipa.DB, o Options, ora *oracle) error {
	if err := db.VerifyIntegrity(); err != nil {
		return fmt.Errorf("integrity: %w", err)
	}
	tables := []struct {
		name     string
		balances []int64
		loaded   int
	}{
		{"accounts", ora.accounts, ora.loadedA},
		{"tellers", ora.tellers, ora.loadedT},
		{"branches", ora.branches, ora.loadedB},
	}
	for _, tb := range tables {
		t, ok := db.Table(tb.name)
		if !ok {
			return fmt.Errorf("table %s missing after reopen", tb.name)
		}
		for key, want := range tb.balances {
			row, err := t.Get(int64(key))
			if key >= tb.loaded {
				// The load batch of this row never committed: it must be
				// invisible after recovery.
				if err == nil {
					return fmt.Errorf("%s key %d from an uncommitted load batch resurrected", tb.name, key)
				}
				if !errors.Is(err, ipa.ErrKeyNotFound) {
					return fmt.Errorf("%s key %d: unexpected error %w", tb.name, key, err)
				}
				continue
			}
			if err != nil {
				return fmt.Errorf("%s key %d: %w", tb.name, key, err)
			}
			if got := getKey(row, balanceOffset); got != want {
				return fmt.Errorf("%s key %d: balance %d, committed state says %d", tb.name, key, got, want)
			}
			if got := getKey(row, keyOffset); got != int64(key) {
				return fmt.Errorf("%s key %d: stored key reads %d", tb.name, key, got)
			}
		}
	}
	hist, ok := db.Table("history")
	if !ok {
		return fmt.Errorf("history table missing after reopen")
	}
	for hid := int64(1); hid <= ora.nextHist; hid++ {
		want, committed := ora.history[hid]
		row, err := hist.Get(hid)
		if committed {
			if err != nil {
				return fmt.Errorf("committed history row %d lost: %w", hid, err)
			}
			if getKey(row, historyAccountOffset) != want[0] || getKey(row, 16) != want[1] {
				return fmt.Errorf("history row %d corrupted", hid)
			}
		} else if err == nil {
			return fmt.Errorf("uncommitted history row %d resurrected", hid)
		} else if !errors.Is(err, ipa.ErrKeyNotFound) {
			return fmt.Errorf("history row %d: unexpected error %w", hid, err)
		}
	}
	if got := hist.Count(); got != uint64(len(ora.history)) {
		return fmt.Errorf("history count %d, committed state says %d", got, len(ora.history))
	}
	// The secondary access path must agree with the committed state:
	// every live history row is reachable under its account id — one
	// lookup per account, not per row. (VerifyIntegrity above already
	// cross-checked both secondary indexes entry-by-entry against the
	// heap.)
	perAccount := make(map[int64]map[int64]bool)
	for hid, want := range ora.history {
		set := perAccount[want[0]]
		if set == nil {
			set = make(map[int64]bool)
			perAccount[want[0]] = set
		}
		set[hid] = true
	}
	for account, hids := range perAccount {
		rows, err := hist.GetBySecondary("by_account", account)
		if err != nil {
			return fmt.Errorf("history by_account %d: %w", account, err)
		}
		for _, row := range rows {
			delete(hids, getKey(row, keyOffset))
		}
		for hid := range hids {
			return fmt.Errorf("history row %d not reachable via by_account %d", hid, account)
		}
	}
	return nil
}

// isPowerLoss reports whether err is (or wraps) the injected power cut.
func isPowerLoss(err error) bool { return errors.Is(err, ipa.ErrPowerLost) }

// samplePoints spreads up to sample indices evenly over [1, total].
func samplePoints(total uint64, sample int) []uint64 {
	if total == 0 {
		return nil
	}
	if sample <= 0 || uint64(sample) >= total {
		out := make([]uint64, 0, total)
		for k := uint64(1); k <= total; k++ {
			out = append(out, k)
		}
		return out
	}
	if sample == 1 {
		return []uint64{(total + 1) / 2}
	}
	out := make([]uint64, 0, sample)
	for i := 0; i < sample; i++ {
		k := 1 + uint64(i)*(total-1)/uint64(sample-1)
		if n := len(out); n > 0 && out[n-1] == k {
			continue
		}
		out = append(out, k)
	}
	return out
}

// Enumerate counts the fault points of the reference run (load plus Ops
// transactions) without crashing.
func Enumerate(o Options) (uint64, error) {
	o = o.withDefaults()
	plan := ipa.NewFaultPlan(0, ipa.CrashBefore)
	if o.Kinds != 0 {
		plan.SetKinds(o.Kinds)
	}
	cfg := o.DB
	cfg.Faults = plan
	d, err := newDriver(cfg, o)
	if err != nil {
		return 0, err
	}
	defer d.db.Close()
	if err := d.load(); err != nil {
		return 0, err
	}
	// No readers: the enumeration must stay deterministic, and reader-
	// driven buffer-pool traffic would perturb the eviction order.
	if err := d.run(o.Ops, 0); err != nil {
		return 0, err
	}
	return plan.Ops(), nil
}

// PointOutcome describes one crash-recover-verify cycle.
type PointOutcome struct {
	GCRuns      uint64            // garbage-collection runs before the crash
	Tripped     bool              // whether the fault actually fired
	Checkpoints int               // fuzzy checkpoints the pre-crash run completed
	Recovery    ipa.RecoveryStats // cost of the successful Reopen (zero until it succeeds)
}

// RunPoint runs the workload once, crashing at fault point k with the given
// mode, then reopens and verifies. It returns the pre-crash GC run count
// and whether the fault fired.
func RunPoint(o Options, k uint64, mode ipa.FaultMode) (gcRuns uint64, tripped bool, err error) {
	out, err := RunPointDetail(o, k, mode)
	return out.GCRuns, out.Tripped, err
}

// RunPointDetail is RunPoint with the full cycle outcome, including the
// recovery cost metrics of the Reopen.
func RunPointDetail(o Options, k uint64, mode ipa.FaultMode) (PointOutcome, error) {
	o = o.withDefaults()
	var out PointOutcome
	plan := ipa.NewFaultPlan(k, mode)
	if o.Kinds != 0 {
		plan.SetKinds(o.Kinds)
	}
	cfg := o.DB
	cfg.Faults = plan
	d, derr := newDriver(cfg, o)
	if derr != nil {
		return out, derr
	}
	runErr := d.load()
	if runErr == nil {
		runErr = d.run(o.Ops, o.Readers)
	}
	out.Tripped = plan.Tripped()
	out.Checkpoints = d.ckpts
	if runErr != nil && !isPowerLoss(runErr) {
		d.db.Close()
		return out, fmt.Errorf("workload: %w", runErr)
	}
	stats := d.db.Stats()
	out.GCRuns = stats.GCRuns
	img := d.db.Crash()
	db2, rerr := ipa.Reopen(img)
	if rerr != nil {
		return out, fmt.Errorf("reopen: %w", rerr)
	}
	defer db2.Close()
	out.Recovery = db2.RecoveryStats()
	if verr := verify(db2, o, d.ora); verr != nil {
		return out, verr
	}
	// The recovered database must keep working.
	post := &driver{opts: o, db: db2, ora: d.ora}
	var ok bool
	if post.accounts, ok = db2.Table("accounts"); !ok {
		return out, fmt.Errorf("accounts table missing after reopen")
	}
	post.tellers, _ = db2.Table("tellers")
	post.branches, _ = db2.Table("branches")
	post.history, _ = db2.Table("history")
	if d.loaded {
		r := rand.New(rand.NewSource(o.Seed + int64(k) + 1))
		for i := 0; i < o.PostOps; i++ {
			if perr := post.runOne(r); perr != nil {
				return out, fmt.Errorf("post-recovery transaction: %w", perr)
			}
		}
		if verr := verify(db2, o, d.ora); verr != nil {
			return out, fmt.Errorf("after post-recovery work: %w", verr)
		}
	}
	return out, nil
}

// Sweep enumerates the fault points of the reference run and executes a
// crash-recover-verify cycle at every sampled point for every mode.
func Sweep(o Options) (Result, error) {
	o = o.withDefaults()
	total, err := Enumerate(o)
	if err != nil {
		return Result{}, fmt.Errorf("crash: enumerate: %w", err)
	}
	res := Result{FaultPoints: int(total)}
	points := samplePoints(total, o.Sample)
	for _, mode := range o.Modes {
		for _, k := range points {
			out, err := RunPointDetail(o, k, mode)
			res.Runs++
			res.Checkpoints += out.Checkpoints
			if out.Tripped {
				res.Crashes++
				if out.GCRuns > 0 {
					res.GCCovered = true
				}
				if out.Checkpoints > 0 {
					res.CkptCovered = true
				}
			}
			if out.Recovery != (ipa.RecoveryStats{}) {
				res.Recovery.Recoveries++
				if out.Recovery.CheckpointLSN > 0 {
					res.Recovery.FromCheckpoint++
				}
				res.Recovery.Wall += out.Recovery.Wall
				res.Recovery.Virtual += out.Recovery.Virtual
				res.Recovery.PagesScanned += uint64(out.Recovery.PagesScanned)
				res.Recovery.RecordsRedone += out.Recovery.RecordsRedone
			}
			if err != nil {
				res.Failures = append(res.Failures, fmt.Sprintf("point %d/%d (%v): %v", k, total, mode, err))
			}
		}
	}
	return res, nil
}

// ReferenceRun executes the reference workload without faults and returns
// the open database and its statistics (for calibration and tests).
func ReferenceRun(o Options) (*ipa.DB, ipa.Stats, error) {
	o = o.withDefaults()
	d, err := newDriver(o.DB, o)
	if err != nil {
		return nil, ipa.Stats{}, err
	}
	if err := d.load(); err != nil {
		return d.db, d.db.Stats(), err
	}
	// No readers: reference statistics calibrate device activity.
	if err := d.run(o.Ops, 0); err != nil {
		return d.db, d.db.Stats(), err
	}
	return d.db, d.db.Stats(), nil
}
