// Package ecc implements the error-correction codes used by the simulated
// Flash device.
//
// Real NAND controllers protect every Flash page with an ECC stored in the
// page's out-of-band (OOB) area. In-Place Appends complicates this because
// the page content changes after the initial program: the appended delta
// records would invalidate a whole-page code. The paper therefore stores
// one ECC for the initially programmed content and one additional ECC per
// appended delta record (Figure 3). This package provides the codec for
// both: a single-error-correcting, double-error-detecting (SEC-DED) code
// over arbitrary byte regions.
//
// The code stores, per protected region, the XOR of the bit positions of
// all 1-bits plus an overall parity bit. A single flipped bit changes the
// position-XOR by exactly its own index, which identifies and corrects it;
// a double flip leaves the parity unchanged while disturbing the syndrome,
// which is reported as uncorrectable.
package ecc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
)

// CodeSize is the number of ECC bytes produced per protected region:
// a 32-bit position XOR, a 16-bit population-count check and a parity byte.
const CodeSize = 7

// Errors reported by Decode.
var (
	// ErrUncorrectable is returned when the protected region holds more
	// bit errors than the code can correct.
	ErrUncorrectable = errors.New("ecc: uncorrectable error")
	// ErrBadCode is returned when the stored code bytes are malformed.
	ErrBadCode = errors.New("ecc: malformed code")
)

// Encode computes the ECC for data and returns the CodeSize code bytes.
// Regions up to 256 MiB are supported, far beyond any Flash page size.
func Encode(data []byte) []byte {
	code := make([]byte, CodeSize)
	posXOR, ones := signature(data)
	binary.LittleEndian.PutUint32(code[0:4], posXOR)
	binary.LittleEndian.PutUint16(code[4:6], uint16(ones))
	code[6] = byte(ones & 1)
	return code
}

// signature returns the XOR of 1-based bit positions of all set bits and
// the total number of set bits in data.
func signature(data []byte) (posXOR uint32, ones uint64) {
	for i, b := range data {
		if b == 0 {
			continue
		}
		ones += uint64(bits.OnesCount8(b))
		base := uint32(i*8) + 1
		for bit := uint32(0); bit < 8; bit++ {
			if b&(1<<bit) != 0 {
				posXOR ^= base + bit
			}
		}
	}
	return posXOR, ones
}

// Result describes the outcome of a Decode call.
type Result struct {
	// Corrected is the number of bit errors repaired in place (0 or 1).
	Corrected int
}

// Decode verifies data against code and corrects a single bit error in
// place. It returns the number of corrected bits. Double (or more) bit
// errors are detected and reported as ErrUncorrectable.
func Decode(data, code []byte) (Result, error) {
	if len(code) < CodeSize {
		return Result{}, fmt.Errorf("%w: got %d bytes, want %d", ErrBadCode, len(code), CodeSize)
	}
	wantXOR := binary.LittleEndian.Uint32(code[0:4])
	wantOnes := binary.LittleEndian.Uint16(code[4:6])
	wantParity := code[6] & 1

	gotXOR, gotOnes := signature(data)
	if gotXOR == wantXOR && uint16(gotOnes) == wantOnes {
		return Result{}, nil
	}
	parityChanged := byte(gotOnes&1) != wantParity
	if !parityChanged {
		// An even number (>= 2) of bits flipped: detectable, not correctable.
		return Result{}, fmt.Errorf("%w: even multi-bit error", ErrUncorrectable)
	}
	// A single flip: the syndrome equals the 1-based position of the bit.
	syndrome := gotXOR ^ wantXOR
	if syndrome == 0 || int(syndrome-1) >= len(data)*8 {
		return Result{}, fmt.Errorf("%w: syndrome out of range", ErrUncorrectable)
	}
	pos := int(syndrome - 1)
	data[pos/8] ^= 1 << uint(pos%8)
	// Verify the correction actually restored the signature; if not, more
	// than one bit differed.
	fixedXOR, fixedOnes := signature(data)
	if fixedXOR != wantXOR || uint16(fixedOnes) != wantOnes {
		// Undo the speculative flip and report failure.
		data[pos/8] ^= 1 << uint(pos%8)
		return Result{}, fmt.Errorf("%w: multi-bit error", ErrUncorrectable)
	}
	return Result{Corrected: 1}, nil
}

// Blank reports whether code consists only of erased (0xFF) bytes, i.e. no
// ECC has been programmed into that OOB slot yet.
func Blank(code []byte) bool {
	for _, b := range code {
		if b != 0xFF {
			return false
		}
	}
	return true
}
