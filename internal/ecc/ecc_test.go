package ecc

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeClean(t *testing.T) {
	data := []byte("the quick brown fox jumps over the lazy dog")
	code := Encode(data)
	if len(code) != CodeSize {
		t.Fatalf("code size %d, want %d", len(code), CodeSize)
	}
	res, err := Decode(data, code)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if res.Corrected != 0 {
		t.Fatalf("clean data should need no correction, got %d", res.Corrected)
	}
}

func TestSingleBitCorrection(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		data := make([]byte, 1+r.Intn(512))
		r.Read(data)
		code := Encode(data)
		orig := append([]byte(nil), data...)
		// Flip one random bit.
		pos := r.Intn(len(data) * 8)
		data[pos/8] ^= 1 << uint(pos%8)
		res, err := Decode(data, code)
		if err != nil {
			t.Fatalf("trial %d: Decode failed: %v", trial, err)
		}
		if res.Corrected != 1 {
			t.Fatalf("trial %d: corrected %d bits, want 1", trial, res.Corrected)
		}
		if !bytes.Equal(data, orig) {
			t.Fatalf("trial %d: correction produced wrong data", trial)
		}
	}
}

func TestDoubleBitDetection(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	detected := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		data := make([]byte, 64+r.Intn(256))
		r.Read(data)
		code := Encode(data)
		p1 := r.Intn(len(data) * 8)
		p2 := r.Intn(len(data) * 8)
		for p2 == p1 {
			p2 = r.Intn(len(data) * 8)
		}
		data[p1/8] ^= 1 << uint(p1%8)
		data[p2/8] ^= 1 << uint(p2%8)
		if _, err := Decode(data, code); err != nil {
			if !errors.Is(err, ErrUncorrectable) {
				t.Fatalf("trial %d: unexpected error type %v", trial, err)
			}
			detected++
		}
	}
	if detected != trials {
		t.Fatalf("double-bit errors detected in %d/%d trials", detected, trials)
	}
}

func TestDecodeBadCode(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}, []byte{0}); !errors.Is(err, ErrBadCode) {
		t.Fatalf("expected ErrBadCode, got %v", err)
	}
}

func TestBlank(t *testing.T) {
	if !Blank([]byte{0xFF, 0xFF, 0xFF}) {
		t.Errorf("all-FF must be blank")
	}
	if Blank([]byte{0xFF, 0x00}) {
		t.Errorf("non-FF must not be blank")
	}
	// A real code is never all 0xFF for small regions.
	data := make([]byte, 256)
	for i := range data {
		data[i] = 0xFF
	}
	if Blank(Encode(data)) {
		t.Errorf("encoded code collides with the blank marker")
	}
}

func TestEncodeEmptyData(t *testing.T) {
	code := Encode(nil)
	if _, err := Decode(nil, code); err != nil {
		t.Fatalf("empty region should verify: %v", err)
	}
}

// TestRoundTripProperty: decoding unmodified data always succeeds with zero
// corrections, for arbitrary content.
func TestRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		code := Encode(data)
		res, err := Decode(data, code)
		return err == nil && res.Corrected == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatalf("round-trip property: %v", err)
	}
}

// TestSingleFlipProperty: any single bit flip in arbitrary data is corrected
// back to the original.
func TestSingleFlipProperty(t *testing.T) {
	f := func(data []byte, pos uint16) bool {
		if len(data) == 0 {
			return true
		}
		bit := int(pos) % (len(data) * 8)
		code := Encode(data)
		orig := append([]byte(nil), data...)
		data[bit/8] ^= 1 << uint(bit%8)
		res, err := Decode(data, code)
		return err == nil && res.Corrected == 1 && bytes.Equal(data, orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatalf("single-flip property: %v", err)
	}
}

func BenchmarkEncode8K(b *testing.B) {
	data := make([]byte, 8192)
	rand.New(rand.NewSource(1)).Read(data)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Encode(data)
	}
}

func BenchmarkDecodeClean8K(b *testing.B) {
	data := make([]byte, 8192)
	rand.New(rand.NewSource(1)).Read(data)
	code := Encode(data)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(data, code); err != nil {
			b.Fatal(err)
		}
	}
}
