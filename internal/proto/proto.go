// Package proto implements the wire codec shared by the ipa server and
// client: RESP2-compatible framing (the REdis Serialization Protocol), so
// off-the-shelf Redis clients and redis-cli can speak the simple verbs
// while ipaclient gets a typed Go surface.
//
// A client request is one RESP array of bulk strings (the command name
// followed by its arguments) or, for hand-typed telnet sessions, one
// inline command: a whitespace-separated line. A server reply is any RESP
// value: simple string (+OK), error (-CODE message), integer (:n), bulk
// string ($len), null bulk ($-1) or array (*n of further replies).
//
// The codec is defensive by construction: every length prefix is bounded
// (MaxBulk bytes per bulk string, MaxArity elements per request array,
// MaxLine bytes per line), torn frames surface io.ErrUnexpectedEOF, and
// malformed input surfaces ErrProto — the decoder never panics and never
// allocates more than the declared limits, which FuzzProtoDecode pins.
// The full frame grammar, command set and error-code table are specified
// in docs/DESIGN_SERVER.md.
package proto

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// Limits applied by Reader. They bound the memory one peer can make the
// other side allocate before any command is dispatched.
const (
	// DefaultMaxBulk is the largest accepted bulk-string payload.
	DefaultMaxBulk = 8 << 20
	// DefaultMaxArity is the largest accepted request-array element count.
	DefaultMaxArity = 1024
	// DefaultMaxLine is the largest accepted single line (inline commands
	// and length prefixes).
	DefaultMaxLine = 64 << 10
)

// ErrProto reports a malformed frame: an unknown type byte, a broken
// length prefix, a missing CRLF terminator. The connection cannot be
// resynchronised after it and must be closed.
var ErrProto = errors.New("proto: malformed frame")

// ErrTooLarge reports a frame that exceeds the reader's limits. Like
// ErrProto it is unrecoverable: the declared bytes were not consumed.
var ErrTooLarge = errors.New("proto: frame exceeds limit")

// ReplyKind enumerates the RESP value types a reply can carry.
type ReplyKind int

const (
	// KindSimple is a +OK style status string.
	KindSimple ReplyKind = iota
	// KindError is a -CODE message error string.
	KindError
	// KindInt is a :n integer.
	KindInt
	// KindBulk is a $len binary-safe string.
	KindBulk
	// KindNull is the $-1 null bulk string.
	KindNull
	// KindArray is a *n array of nested replies.
	KindArray
)

// String names the reply kind.
func (k ReplyKind) String() string {
	switch k {
	case KindSimple:
		return "simple"
	case KindError:
		return "error"
	case KindInt:
		return "integer"
	case KindBulk:
		return "bulk"
	case KindNull:
		return "null"
	case KindArray:
		return "array"
	default:
		return fmt.Sprintf("ReplyKind(%d)", int(k))
	}
}

// Reply is one decoded server reply.
type Reply struct {
	Kind ReplyKind
	// Str holds the text of simple strings and errors. Error text is
	// "CODE message" with CODE a single upper-case token; see ErrorCode.
	Str string
	// Int holds the value of integer replies.
	Int int64
	// Bulk holds the payload of bulk replies (nil for null).
	Bulk []byte
	// Elems holds the nested replies of array replies.
	Elems []Reply
}

// ErrorCode returns the leading upper-case token of an error reply ("ERR",
// "NOTFOUND", ...) and "" for non-error replies.
func (r Reply) ErrorCode() string {
	if r.Kind != KindError {
		return ""
	}
	for i := 0; i < len(r.Str); i++ {
		if r.Str[i] == ' ' {
			return r.Str[:i]
		}
	}
	return r.Str
}

// Reader decodes RESP frames from a stream.
type Reader struct {
	br *bufio.Reader
	// MaxBulk, MaxArity and MaxLine bound the accepted frames; the zero
	// value of each selects its package default.
	MaxBulk  int
	MaxArity int
	MaxLine  int
}

// NewReader wraps r in a frame decoder with default limits. The buffer is
// sized to DefaultMaxLine so the longest permitted line fits ReadSlice.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, DefaultMaxLine)}
}

func (r *Reader) maxBulk() int {
	if r.MaxBulk > 0 {
		return r.MaxBulk
	}
	return DefaultMaxBulk
}

func (r *Reader) maxArity() int {
	if r.MaxArity > 0 {
		return r.MaxArity
	}
	return DefaultMaxArity
}

func (r *Reader) maxLine() int {
	if r.MaxLine > 0 {
		return r.MaxLine
	}
	return DefaultMaxLine
}

// readLine reads one CRLF-terminated line, excluding the terminator. A
// bare LF is rejected (RESP terminates every line with CRLF); a line
// longer than MaxLine fails with ErrTooLarge.
func (r *Reader) readLine() ([]byte, error) {
	line, err := r.br.ReadSlice('\n')
	if errors.Is(err, bufio.ErrBufferFull) {
		return nil, fmt.Errorf("%w: line exceeds %d bytes", ErrTooLarge, r.maxLine())
	}
	if err != nil {
		if errors.Is(err, io.EOF) && len(line) > 0 {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if len(line) > r.maxLine() {
		return nil, fmt.Errorf("%w: line exceeds %d bytes", ErrTooLarge, r.maxLine())
	}
	if len(line) < 2 || line[len(line)-2] != '\r' {
		return nil, fmt.Errorf("%w: line not CRLF-terminated", ErrProto)
	}
	out := make([]byte, len(line)-2)
	copy(out, line[:len(line)-2])
	return out, nil
}

// parseInt parses a RESP length or integer line.
func parseInt(b []byte) (int64, error) {
	n, err := strconv.ParseInt(string(b), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: bad integer %q", ErrProto, b)
	}
	return n, nil
}

// readBulkBody reads n payload bytes plus the trailing CRLF.
func (r *Reader) readBulkBody(n int64) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("%w: negative bulk length %d", ErrProto, n)
	}
	if n > int64(r.maxBulk()) {
		return nil, fmt.Errorf("%w: bulk of %d bytes exceeds %d", ErrTooLarge, n, r.maxBulk())
	}
	buf := make([]byte, n+2)
	if _, err := io.ReadFull(r.br, buf); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if buf[n] != '\r' || buf[n+1] != '\n' {
		return nil, fmt.Errorf("%w: bulk not CRLF-terminated", ErrProto)
	}
	return buf[:n:n], nil
}

// ReadCommand reads one client request: a RESP array of bulk strings, or
// an inline command (a non-empty whitespace-separated line that does not
// start with '*'). Empty inline lines are skipped, as in Redis. io.EOF is
// returned only at a clean frame boundary; a connection cut mid-frame
// surfaces io.ErrUnexpectedEOF.
func (r *Reader) ReadCommand() ([][]byte, error) {
	for {
		first, err := r.br.ReadByte()
		if err != nil {
			return nil, err
		}
		if first != '*' {
			if err := r.br.UnreadByte(); err != nil {
				return nil, err
			}
			line, err := r.readLine()
			if err != nil {
				return nil, err
			}
			args := splitInline(line)
			if len(args) == 0 {
				continue // empty line between commands: ignore
			}
			if len(args) > r.maxArity() {
				return nil, fmt.Errorf("%w: %d arguments exceed %d", ErrTooLarge, len(args), r.maxArity())
			}
			return args, nil
		}
		header, err := r.readLine()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil, io.ErrUnexpectedEOF // the '*' was consumed
			}
			return nil, err
		}
		n, err := parseInt(header)
		if err != nil {
			return nil, err
		}
		if n <= 0 {
			return nil, fmt.Errorf("%w: request array of %d elements", ErrProto, n)
		}
		if n > int64(r.maxArity()) {
			return nil, fmt.Errorf("%w: %d arguments exceed %d", ErrTooLarge, n, r.maxArity())
		}
		args := make([][]byte, 0, n)
		for i := int64(0); i < n; i++ {
			t, err := r.br.ReadByte()
			if err != nil {
				if errors.Is(err, io.EOF) {
					return nil, io.ErrUnexpectedEOF
				}
				return nil, err
			}
			if t != '$' {
				return nil, fmt.Errorf("%w: request element %d is %q, want bulk string", ErrProto, i, t)
			}
			line, err := r.readLine()
			if err != nil {
				if errors.Is(err, io.EOF) {
					return nil, io.ErrUnexpectedEOF
				}
				return nil, err
			}
			ln, err := parseInt(line)
			if err != nil {
				return nil, err
			}
			body, err := r.readBulkBody(ln)
			if err != nil {
				return nil, err
			}
			args = append(args, body)
		}
		return args, nil
	}
}

// splitInline splits an inline command on spaces and tabs.
func splitInline(line []byte) [][]byte {
	var args [][]byte
	i := 0
	for i < len(line) {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		start := i
		for i < len(line) && line[i] != ' ' && line[i] != '\t' {
			i++
		}
		if i > start {
			args = append(args, line[start:i])
		}
	}
	return args
}

// ReadReply reads one server reply, including nested arrays. io.EOF is
// returned only at a clean frame boundary.
func (r *Reader) ReadReply() (Reply, error) {
	return r.readReply(0)
}

// maxReplyDepth bounds nested arrays so hostile input cannot recurse the
// decoder into stack exhaustion.
const maxReplyDepth = 8

func (r *Reader) readReply(depth int) (Reply, error) {
	t, err := r.br.ReadByte()
	if err != nil {
		return Reply{}, err
	}
	line, err := r.readLine()
	if err != nil {
		if errors.Is(err, io.EOF) {
			return Reply{}, io.ErrUnexpectedEOF
		}
		return Reply{}, err
	}
	switch t {
	case '+':
		return Reply{Kind: KindSimple, Str: string(line)}, nil
	case '-':
		return Reply{Kind: KindError, Str: string(line)}, nil
	case ':':
		n, err := parseInt(line)
		if err != nil {
			return Reply{}, err
		}
		return Reply{Kind: KindInt, Int: n}, nil
	case '$':
		n, err := parseInt(line)
		if err != nil {
			return Reply{}, err
		}
		if n == -1 {
			return Reply{Kind: KindNull}, nil
		}
		body, err := r.readBulkBody(n)
		if err != nil {
			return Reply{}, err
		}
		return Reply{Kind: KindBulk, Bulk: body}, nil
	case '*':
		n, err := parseInt(line)
		if err != nil {
			return Reply{}, err
		}
		if n == -1 {
			return Reply{Kind: KindNull}, nil
		}
		if n < 0 || n > int64(r.maxArity()) {
			return Reply{}, fmt.Errorf("%w: array of %d elements", ErrTooLarge, n)
		}
		if depth >= maxReplyDepth {
			return Reply{}, fmt.Errorf("%w: arrays nested deeper than %d", ErrProto, maxReplyDepth)
		}
		elems := make([]Reply, 0, n)
		for i := int64(0); i < n; i++ {
			e, err := r.readReply(depth + 1)
			if err != nil {
				if errors.Is(err, io.EOF) {
					return Reply{}, io.ErrUnexpectedEOF
				}
				return Reply{}, err
			}
			elems = append(elems, e)
		}
		return Reply{Kind: KindArray, Elems: elems}, nil
	default:
		return Reply{}, fmt.Errorf("%w: unknown type byte %q", ErrProto, t)
	}
}

// Writer encodes RESP frames onto a buffered stream. It is not safe for
// concurrent use; the server serialises all writes through the session
// executor, the client through its connection mutex.
type Writer struct {
	bw *bufio.Writer
}

// NewWriter wraps w in a frame encoder.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriter(w)}
}

// WriteSimple writes a +status reply.
func (w *Writer) WriteSimple(s string) {
	w.bw.WriteByte('+')
	w.bw.WriteString(s)
	w.bw.WriteString("\r\n")
}

// WriteError writes a -CODE message reply. The message has CR and LF
// stripped so it can never break the framing.
func (w *Writer) WriteError(code, msg string) {
	w.bw.WriteByte('-')
	w.bw.WriteString(code)
	if msg != "" {
		w.bw.WriteByte(' ')
		for i := 0; i < len(msg); i++ {
			if c := msg[i]; c != '\r' && c != '\n' {
				w.bw.WriteByte(c)
			}
		}
	}
	w.bw.WriteString("\r\n")
}

// WriteInt writes a :n integer reply.
func (w *Writer) WriteInt(n int64) {
	w.bw.WriteByte(':')
	w.bw.WriteString(strconv.FormatInt(n, 10))
	w.bw.WriteString("\r\n")
}

// WriteBulk writes a $len binary-safe bulk reply.
func (w *Writer) WriteBulk(b []byte) {
	w.bw.WriteByte('$')
	w.bw.WriteString(strconv.Itoa(len(b)))
	w.bw.WriteString("\r\n")
	w.bw.Write(b)
	w.bw.WriteString("\r\n")
}

// WriteBulkString writes a bulk reply from a string.
func (w *Writer) WriteBulkString(s string) { w.WriteBulk([]byte(s)) }

// WriteNull writes the $-1 null bulk reply.
func (w *Writer) WriteNull() {
	w.bw.WriteString("$-1\r\n")
}

// WriteArray writes an *n array header; the caller then writes n nested
// replies.
func (w *Writer) WriteArray(n int) {
	w.bw.WriteByte('*')
	w.bw.WriteString(strconv.Itoa(n))
	w.bw.WriteString("\r\n")
}

// WriteCommand writes one client request as a RESP array of bulk strings.
func (w *Writer) WriteCommand(args ...[]byte) {
	w.WriteArray(len(args))
	for _, a := range args {
		w.WriteBulk(a)
	}
}

// Flush pushes buffered frames to the underlying stream.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Buffered returns the number of bytes waiting for Flush. The session
// executor uses it to flush only at pipeline boundaries.
func (w *Writer) Buffered() int { return w.bw.Buffered() }
