package proto

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestReadCommandArray(t *testing.T) {
	r := NewReader(strings.NewReader("*3\r\n$3\r\nGET\r\n$2\r\nkv\r\n$1\r\n7\r\n"))
	args, err := r.ReadCommand()
	if err != nil {
		t.Fatalf("ReadCommand: %v", err)
	}
	want := [][]byte{[]byte("GET"), []byte("kv"), []byte("7")}
	if len(args) != len(want) {
		t.Fatalf("got %d args, want %d", len(args), len(want))
	}
	for i := range want {
		if !bytes.Equal(args[i], want[i]) {
			t.Errorf("arg %d = %q, want %q", i, args[i], want[i])
		}
	}
	if _, err := r.ReadCommand(); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
}

func TestReadCommandInline(t *testing.T) {
	r := NewReader(strings.NewReader("\r\n  PING  \r\nECHO hello\tworld\r\n"))
	args, err := r.ReadCommand()
	if err != nil {
		t.Fatalf("ReadCommand: %v", err)
	}
	if len(args) != 1 || string(args[0]) != "PING" {
		t.Fatalf("inline 1 = %q", args)
	}
	args, err = r.ReadCommand()
	if err != nil {
		t.Fatalf("ReadCommand: %v", err)
	}
	if len(args) != 3 || string(args[1]) != "hello" || string(args[2]) != "world" {
		t.Fatalf("inline 2 = %q", args)
	}
}

func TestReadCommandBinarySafe(t *testing.T) {
	payload := []byte("a\r\nb\x00c")
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.WriteCommand([]byte("SET"), payload)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	args, err := r.ReadCommand()
	if err != nil {
		t.Fatalf("ReadCommand: %v", err)
	}
	if !bytes.Equal(args[1], payload) {
		t.Fatalf("payload = %q, want %q", args[1], payload)
	}
}

// TestReadCommandTornFrames cuts a valid frame at every byte boundary: the
// decoder must report io.ErrUnexpectedEOF (never a clean EOF, never a
// panic) for each torn prefix.
func TestReadCommandTornFrames(t *testing.T) {
	frame := "*3\r\n$6\r\nINSERT\r\n$2\r\nkv\r\n$4\r\nvvvv\r\n"
	for cut := 1; cut < len(frame); cut++ {
		r := NewReader(strings.NewReader(frame[:cut]))
		_, err := r.ReadCommand()
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut at %d: err = %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
}

// TestReadReplyTornFrames does the same for every reply type.
func TestReadReplyTornFrames(t *testing.T) {
	frames := []string{
		"+OK\r\n",
		"-NOTFOUND ipa: key not found\r\n",
		":12345\r\n",
		"$5\r\nhello\r\n",
		"*2\r\n:1\r\n$2\r\nab\r\n",
	}
	for _, frame := range frames {
		for cut := 1; cut < len(frame); cut++ {
			r := NewReader(strings.NewReader(frame[:cut]))
			_, err := r.ReadReply()
			if !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("frame %q cut at %d: err = %v, want io.ErrUnexpectedEOF", frame, cut, err)
			}
		}
	}
}

func TestReadCommandMalformed(t *testing.T) {
	cases := []string{
		"*2\r\n$3\r\nGET\r\n:5\r\n", // non-bulk element
		"*0\r\n",                    // empty array
		"*-1\r\n",                   // negative array
		"*x\r\n",                    // garbage length
		"$3\r\nGET\r\n",             // bulk where a command is expected: inline "$3"+garbage
		"*1\r\n$-5\r\n\r\n",         // negative bulk length
		"*1\r\n$3\r\nGETX\r\n",      // bulk body not CRLF-terminated at declared length
		"*1\r\n$2\r\nAB\nX",         // LF without CR
	}
	for _, in := range cases {
		r := NewReader(strings.NewReader(in))
		_, err := r.ReadCommand()
		// "$3\r\nGET\r\n" parses as inline command "$3" then "GET": accept
		// any outcome except panic for that one; the rest must error.
		if in == "$3\r\nGET\r\n" {
			continue
		}
		if err == nil {
			t.Errorf("input %q: decoded without error", in)
		}
	}
}

func TestOversizedRejected(t *testing.T) {
	t.Run("bulk", func(t *testing.T) {
		r := NewReader(strings.NewReader("*1\r\n$999999999\r\n"))
		r.MaxBulk = 1024
		_, err := r.ReadCommand()
		if !errors.Is(err, ErrTooLarge) {
			t.Fatalf("err = %v, want ErrTooLarge", err)
		}
	})
	t.Run("arity", func(t *testing.T) {
		r := NewReader(strings.NewReader("*500000\r\n"))
		r.MaxArity = 64
		_, err := r.ReadCommand()
		if !errors.Is(err, ErrTooLarge) {
			t.Fatalf("err = %v, want ErrTooLarge", err)
		}
	})
	t.Run("line", func(t *testing.T) {
		r := NewReader(strings.NewReader(strings.Repeat("a", DefaultMaxLine+10) + "\r\n"))
		_, err := r.ReadCommand()
		if !errors.Is(err, ErrTooLarge) {
			t.Fatalf("err = %v, want ErrTooLarge", err)
		}
	})
	t.Run("declared bulk never allocated", func(t *testing.T) {
		// The declared 8 EiB length must be rejected from the prefix alone.
		r := NewReader(strings.NewReader("*1\r\n$9223372036854775807\r\n"))
		_, err := r.ReadCommand()
		if !errors.Is(err, ErrTooLarge) {
			t.Fatalf("err = %v, want ErrTooLarge", err)
		}
	})
}

// TestPipelinedBatchDecode decodes a back-to-back batch of frames — the
// shape a pipelining client produces — and checks every frame comes out
// intact and in order.
func TestPipelinedBatchDecode(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	const n = 100
	for i := 0; i < n; i++ {
		w.WriteCommand([]byte("SET"), []byte{byte(i)}, bytes.Repeat([]byte{byte(i)}, i))
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	for i := 0; i < n; i++ {
		args, err := r.ReadCommand()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if len(args) != 3 || args[1][0] != byte(i) || len(args[2]) != i {
			t.Fatalf("frame %d decoded as %q", i, args)
		}
	}
	if _, err := r.ReadCommand(); err != io.EOF {
		t.Fatalf("after batch: %v, want io.EOF", err)
	}
}

// TestReplyRoundTrip encodes every reply shape and decodes it back.
func TestReplyRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.WriteSimple("OK")
	w.WriteError("CONFLICT", "ipa: record is locked\r\nby another transaction")
	w.WriteInt(-42)
	w.WriteBulk([]byte("tuple\x00bytes"))
	w.WriteNull()
	w.WriteArray(2)
	w.WriteInt(7)
	w.WriteBulkString("row")
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	rep, _ := r.ReadReply()
	if rep.Kind != KindSimple || rep.Str != "OK" {
		t.Fatalf("simple = %+v", rep)
	}
	rep, _ = r.ReadReply()
	if rep.Kind != KindError || rep.ErrorCode() != "CONFLICT" {
		t.Fatalf("error = %+v", rep)
	}
	if strings.ContainsAny(rep.Str, "\r\n") {
		t.Fatalf("error text leaked CRLF: %q", rep.Str)
	}
	rep, _ = r.ReadReply()
	if rep.Kind != KindInt || rep.Int != -42 {
		t.Fatalf("int = %+v", rep)
	}
	rep, _ = r.ReadReply()
	if rep.Kind != KindBulk || !bytes.Equal(rep.Bulk, []byte("tuple\x00bytes")) {
		t.Fatalf("bulk = %+v", rep)
	}
	rep, _ = r.ReadReply()
	if rep.Kind != KindNull {
		t.Fatalf("null = %+v", rep)
	}
	rep, err := r.ReadReply()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != KindArray || len(rep.Elems) != 2 || rep.Elems[0].Int != 7 || string(rep.Elems[1].Bulk) != "row" {
		t.Fatalf("array = %+v", rep)
	}
	if _, err := r.ReadReply(); err != io.EOF {
		t.Fatalf("after last reply: %v, want io.EOF", err)
	}
}

func TestReplyNestingBounded(t *testing.T) {
	in := strings.Repeat("*1\r\n", maxReplyDepth+2) + ":1\r\n"
	r := NewReader(strings.NewReader(in))
	if _, err := r.ReadReply(); !errors.Is(err, ErrProto) {
		t.Fatalf("err = %v, want ErrProto", err)
	}
}

func TestErrorCodeOfNonError(t *testing.T) {
	if c := (Reply{Kind: KindInt, Int: 3}).ErrorCode(); c != "" {
		t.Fatalf("ErrorCode = %q, want empty", c)
	}
	if c := (Reply{Kind: KindError, Str: "CLOSED"}).ErrorCode(); c != "CLOSED" {
		t.Fatalf("ErrorCode = %q, want CLOSED", c)
	}
}
