package proto

import (
	"bytes"
	"io"
	"testing"
)

// FuzzProtoDecode drives both decoders over arbitrary byte streams with
// tight limits. The properties pinned here (and explored further under
// `go test -fuzz FuzzProtoDecode ./internal/proto`): the decoder never
// panics, never allocates past its declared limits, terminates, and
// anything it successfully decodes re-encodes to a stream that decodes to
// the same values (round-trip stability for commands).
func FuzzProtoDecode(f *testing.F) {
	f.Add([]byte("*3\r\n$3\r\nGET\r\n$2\r\nkv\r\n$1\r\n7\r\n"))
	f.Add([]byte("+OK\r\n-ERR boom\r\n:42\r\n$4\r\nabcd\r\n$-1\r\n"))
	f.Add([]byte("*2\r\n*1\r\n:1\r\n$0\r\n\r\n"))
	f.Add([]byte("PING\r\nECHO hi\r\n"))
	f.Add([]byte("*1\r\n$9223372036854775807\r\n"))
	f.Add([]byte("*1000000\r\n"))
	f.Add([]byte("$5\r\nab"))
	f.Add([]byte("\r\n\r\n*1\r\n$1\r\nX\r\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Commands: decode the whole stream, then round-trip what decoded.
		r := NewReader(bytes.NewReader(data))
		r.MaxBulk = 1 << 16
		r.MaxArity = 64
		var cmds [][][]byte
		for i := 0; i < 1000; i++ {
			args, err := r.ReadCommand()
			if err != nil {
				break
			}
			if len(args) == 0 {
				t.Fatalf("ReadCommand returned an empty command without error")
			}
			cmds = append(cmds, args)
		}
		if len(cmds) > 0 {
			var buf bytes.Buffer
			w := NewWriter(&buf)
			for _, c := range cmds {
				w.WriteCommand(c...)
			}
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			r2 := NewReader(&buf)
			for i, c := range cmds {
				got, err := r2.ReadCommand()
				if err != nil {
					t.Fatalf("round-trip command %d: %v", i, err)
				}
				if len(got) != len(c) {
					t.Fatalf("round-trip command %d: %d args, want %d", i, len(got), len(c))
				}
				for j := range c {
					if !bytes.Equal(got[j], c[j]) {
						t.Fatalf("round-trip command %d arg %d: %q != %q", i, j, got[j], c[j])
					}
				}
			}
			if _, err := r2.ReadCommand(); err != io.EOF {
				t.Fatalf("round-trip stream has trailing data: %v", err)
			}
		}

		// Replies: same stream through the reply decoder — must not panic
		// and must terminate.
		rr := NewReader(bytes.NewReader(data))
		rr.MaxBulk = 1 << 16
		rr.MaxArity = 64
		for i := 0; i < 1000; i++ {
			if _, err := rr.ReadReply(); err != nil {
				break
			}
		}
	})
}
