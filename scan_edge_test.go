package ipa_test

import (
	"sync"
	"testing"

	"ipa"
)

// scanFixture builds a table of 40 rows (pk 0..39, secondary group k%4)
// with a secondary index, for the scan edge-case tests.
func scanFixture(t *testing.T) (*ipa.DB, *ipa.Table) {
	t.Helper()
	db, err := ipa.Open(secCfg())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	tbl, err := db.CreateTable("events", 64)
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	if _, err := tbl.CreateSecondaryIndex("group", ipa.Int64Field(8)); err != nil {
		t.Fatalf("CreateSecondaryIndex: %v", err)
	}
	for k := int64(0); k < 40; k++ {
		tx := db.Begin()
		if err := tx.Insert(tbl, k, secRow(k%4, 1)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("Commit: %v", err)
		}
	}
	return db, tbl
}

func countRange(t *testing.T, tbl *ipa.Table, from, to int64) int {
	t.Helper()
	n := 0
	if err := tbl.ScanRange(from, to, func(int64, []byte) bool { n++; return true }); err != nil {
		t.Fatalf("ScanRange[%d,%d): %v", from, to, err)
	}
	return n
}

func countSecondary(t *testing.T, tbl *ipa.Table, from, to int64) int {
	t.Helper()
	n := 0
	if err := tbl.ScanSecondary("group", from, to, func(int64, []byte) bool { n++; return true }); err != nil {
		t.Fatalf("ScanSecondary[%d,%d): %v", from, to, err)
	}
	return n
}

func TestScanEmptyAndInvertedRanges(t *testing.T) {
	_, tbl := scanFixture(t)
	// Empty ranges: from == to, and ranges beyond the key space.
	if n := countRange(t, tbl, 7, 7); n != 0 {
		t.Fatalf("ScanRange[7,7) visited %d rows, want 0", n)
	}
	if n := countRange(t, tbl, 1000, 2000); n != 0 {
		t.Fatalf("ScanRange beyond keys visited %d rows, want 0", n)
	}
	// Inverted range: from > to must visit nothing (not wrap around).
	if n := countRange(t, tbl, 30, 10); n != 0 {
		t.Fatalf("ScanRange[30,10) visited %d rows, want 0", n)
	}
	if n := countSecondary(t, tbl, 2, 2); n != 0 {
		t.Fatalf("ScanSecondary[2,2) visited %d rows, want 0", n)
	}
	if n := countSecondary(t, tbl, 3, 1); n != 0 {
		t.Fatalf("ScanSecondary[3,1) visited %d rows, want 0", n)
	}
	if n := countSecondary(t, tbl, 500, 600); n != 0 {
		t.Fatalf("ScanSecondary beyond keys visited %d rows, want 0", n)
	}
}

func TestScanSkipsTombstonesInsideRange(t *testing.T) {
	db, tbl := scanFixture(t)
	// Delete keys 10..19 (committed): the tombstoned keys lie inside the
	// scanned range and must be skipped without ending the scan early.
	for k := int64(10); k < 20; k++ {
		tx := db.Begin()
		if err := tx.Delete(tbl, k); err != nil {
			t.Fatalf("Delete: %v", err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("Commit: %v", err)
		}
	}
	if n := countRange(t, tbl, 5, 25); n != 10 {
		t.Fatalf("ScanRange[5,25) visited %d rows, want 10 (10 tombstoned)", n)
	}
	// Each group lost either 2 or 3 of its 10 members.
	if n := countSecondary(t, tbl, 0, 4); n != 30 {
		t.Fatalf("ScanSecondary[0,4) visited %d rows, want 30", n)
	}
	// A pending (uncommitted) delete inside the range stays visible to
	// snapshot scans — only the commit makes it disappear.
	tx := db.Begin()
	if err := tx.Delete(tbl, 5); err != nil {
		t.Fatalf("pending delete: %v", err)
	}
	if n := countRange(t, tbl, 0, 40); n != 30 {
		t.Fatalf("ScanRange with pending delete visited %d rows, want 30", n)
	}
	if n := countSecondary(t, tbl, 0, 4); n != 30 {
		t.Fatalf("ScanSecondary with pending delete visited %d rows, want 30", n)
	}
	if err := tx.Abort(); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	// Rollback restores the row for both access paths.
	if n := countRange(t, tbl, 0, 40); n != 30 {
		t.Fatalf("ScanRange after rollback visited %d rows, want 30", n)
	}
	if n := countSecondary(t, tbl, 0, 4); n != 30 {
		t.Fatalf("ScanSecondary after rollback visited %d rows, want 30", n)
	}
}

// TestScanRacesConcurrentDelete drives range and secondary scans against
// concurrent transactional deletes. Scans snapshot the directory up
// front, so a row deleted mid-scan is either delivered (snapshot before
// the delete) or skipped (tuple already gone) — never an error, never a
// torn read.
func TestScanRacesConcurrentDelete(t *testing.T) {
	db, tbl := scanFixture(t)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := int64(0); k < 40; k += 2 {
			tx := db.Begin()
			if err := tx.Delete(tbl, k); err != nil {
				t.Errorf("Delete %d: %v", k, err)
				return
			}
			if err := tx.Commit(); err != nil {
				t.Errorf("Commit %d: %v", k, err)
				return
			}
		}
	}()
	for i := 0; i < 50; i++ {
		n := 0
		if err := tbl.ScanRange(0, 40, func(k int64, tuple []byte) bool {
			if len(tuple) != 64 {
				t.Errorf("torn tuple of %d bytes at key %d", len(tuple), k)
				return false
			}
			n++
			return true
		}); err != nil {
			t.Fatalf("ScanRange during deletes: %v", err)
		}
		if n < 20 || n > 40 {
			t.Fatalf("ScanRange saw %d rows, want within [20,40]", n)
		}
		m := 0
		if err := tbl.ScanSecondary("group", 0, 4, func(int64, []byte) bool { m++; return true }); err != nil {
			t.Fatalf("ScanSecondary during deletes: %v", err)
		}
		if m < 20 || m > 40 {
			t.Fatalf("ScanSecondary saw %d rows, want within [20,40]", m)
		}
	}
	wg.Wait()
	if n := countRange(t, tbl, 0, 40); n != 20 {
		t.Fatalf("after deletes: %d rows, want 20", n)
	}
	if n := countSecondary(t, tbl, 0, 4); n != 20 {
		t.Fatalf("after deletes (secondary): %d rows, want 20", n)
	}
	if err := db.VerifyIntegrity(); err != nil {
		t.Fatalf("VerifyIntegrity: %v", err)
	}
}
