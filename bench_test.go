// Package ipa_test contains the benchmark harness entry points that
// regenerate every table and figure of the paper's evaluation as Go
// benchmarks. Each benchmark runs a scaled-down version of the experiment
// (see EXPERIMENTS.md for the full-size runs produced by cmd/ipabench) and
// reports the paper's metrics via testing.B custom metrics, so
//
//	go test -bench=. -benchmem
//
// prints, for every experiment, the quantities the paper's tables report
// (GC migrations and erases per host write, in-place-append share,
// transactional throughput, write amplification, ...).
package ipa_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"ipa"
	"ipa/internal/bench"
)

// benchProfile keeps the Go benchmarks quick while still triggering garbage
// collection on the simulated device.
var benchProfile = bench.DeviceProfile{
	PageSize:        4 * 1024,
	Blocks:          96,
	PagesPerBlock:   32,
	BufferPoolPages: 48,
}

// reportTable1Row publishes one Table 1 configuration as benchmark metrics.
func reportTable1Row(b *testing.B, row bench.Table1Row) {
	b.Helper()
	s := row.Result.Stats
	b.ReportMetric(float64(s.HostReads), "hostReads")
	b.ReportMetric(float64(s.TotalHostWrites()), "hostWrites")
	b.ReportMetric(row.InPlacePct, "inPlace%")
	b.ReportMetric(float64(s.GCMigrations), "gcMigrations")
	b.ReportMetric(float64(s.GCErases), "gcErases")
	b.ReportMetric(row.MigPerWrite, "migrations/write")
	b.ReportMetric(row.ErasePerWrite, "erases/write")
	b.ReportMetric(row.Throughput, "tps")
}

// table1Config runs one Table 1 configuration (one column of the table).
func table1Config(b *testing.B, mode ipa.WriteMode, scheme ipa.Scheme, flash ipa.FlashMode) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		exp := bench.Experiment{
			Name:     "bench-table1",
			Workload: "tpcb",
			Scale:    1,
			Mode:     mode,
			Scheme:   scheme,
			Flash:    flash,
			Ops:      5000,
			Seed:     1,
			Analytic: true,
		}.ApplyProfile(benchProfile)
		res, err := bench.Run(exp)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportTable1Row(b, bench.Table1RowFromResult(res))
		}
	}
}

// BenchmarkTable1TPCBTraditional is the [0×0] baseline column of Table 1.
func BenchmarkTable1TPCBTraditional(b *testing.B) {
	table1Config(b, ipa.Traditional, ipa.Scheme{}, ipa.MLCFull)
}

// BenchmarkTable1TPCBIPA2x4PSLC is the [2×4] pSLC column of Table 1.
func BenchmarkTable1TPCBIPA2x4PSLC(b *testing.B) {
	table1Config(b, ipa.IPANativeFlash, ipa.Scheme{N: 2, M: 4}, ipa.PSLC)
}

// BenchmarkTable1TPCBIPA2x4OddMLC is the [2×4] odd-MLC column of Table 1.
func BenchmarkTable1TPCBIPA2x4OddMLC(b *testing.B) {
	table1Config(b, ipa.IPANativeFlash, ipa.Scheme{N: 2, M: 4}, ipa.OddMLC)
}

// BenchmarkFigure1WriteAmplification reproduces Figure 1: the DBMS
// write-amplification of the traditional write path and the transfer
// reduction achieved by write_delta, per workload.
func BenchmarkFigure1WriteAmplification(b *testing.B) {
	for _, wl := range []string{"tpcb", "tpcc", "tatp", "linkbench"} {
		b.Run(wl, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := bench.Figure1(bench.Figure1Options{
					Workloads: []string{wl},
					Scale:     1,
					Ops:       1200,
					Profile:   benchProfile,
					SchemeN:   2, SchemeM: 4,
					Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					row := res.Rows[0]
					b.ReportMetric(100*row.SmallEvictionShare, "<100B-evictions%")
					b.ReportMetric(row.AvgChangedBytes, "avgChangedBytes")
					b.ReportMetric(row.WriteAmplification, "writeAmp")
					b.ReportMetric(row.IPAReductionPct, "ipaTransferReduction%")
					b.ReportMetric(100*row.IPAInPlaceShare, "ipaInPlace%")
				}
			}
		})
	}
}

// BenchmarkOLTPSuite reproduces the headline claims (experiment E3): the
// throughput gain and the reduction of invalidations, migrations and erases
// of IPA over the traditional baseline for TPC-B, TPC-C and TATP.
func BenchmarkOLTPSuite(b *testing.B) {
	for _, wl := range []string{"tpcb", "tpcc", "tatp"} {
		b.Run(wl, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := bench.Suite(bench.SuiteOptions{
					Workloads: []string{wl},
					Scale:     1,
					Ops:       3000,
					Profile:   benchProfile,
					SchemeN:   2, SchemeM: 4,
					Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					row := res.Rows[0]
					b.ReportMetric(row.Baseline.Throughput(), "baseTps")
					b.ReportMetric(row.IPA.Throughput(), "ipaTps")
					b.ReportMetric(row.ThroughputGainPct, "tpsGain%")
					b.ReportMetric(row.InvalidationDropPct, "invalidationDrop%")
					b.ReportMetric(row.EraseDropPct, "eraseDrop%")
				}
			}
		})
	}
}

// BenchmarkIPAvsIPL reproduces the comparison against In-Page Logging
// (experiment E4): Flash writes, reads and erases of both approaches on the
// same eviction trace.
func BenchmarkIPAvsIPL(b *testing.B) {
	for _, wl := range []string{"tpcb", "tpcc", "tatp"} {
		b.Run(wl, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := bench.IPLCompare(bench.IPLOptions{
					Workloads: []string{wl},
					Scale:     1,
					Ops:       1200,
					Profile:   benchProfile,
					SchemeN:   2, SchemeM: 4,
					Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					row := res.Rows[0]
					b.ReportMetric(float64(row.IPAFlashWrites), "ipaWrites")
					b.ReportMetric(float64(row.IPLFlashWrites), "iplWrites")
					b.ReportMetric(row.WriteReductionPct, "writeReduction%")
					b.ReportMetric(row.EraseReductionPct, "eraseReduction%")
					b.ReportMetric(row.ReadOverheadPct, "iplReadOverhead%")
				}
			}
		})
	}
}

// BenchmarkLongevity reproduces the Flash-lifetime estimate (experiment E5):
// how many times longer the device lasts under IPA, derived from the erase
// rate per host write.
func BenchmarkLongevity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.Suite(bench.SuiteOptions{
			Workloads: []string{"tpcb"},
			Scale:     1,
			Ops:       5000,
			Profile:   benchProfile,
			SchemeN:   2, SchemeM: 4,
			Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			rows := bench.Longevity(res)
			b.ReportMetric(rows[0].ErasesPerWrite, "baseErases/write")
			b.ReportMetric(rows[1].ErasesPerWrite, "ipaErases/write")
			b.ReportMetric(rows[1].RelativeLifetime, "lifetimeX")
		}
	}
}

// BenchmarkSchemeSweep reproduces the N×M ablation (experiment E6): the
// space overhead of the delta-record area against the share of evictions
// served by in-place appends.
func BenchmarkSchemeSweep(b *testing.B) {
	for _, cfg := range []struct {
		name string
		n, m int
	}{
		{"1x4", 1, 4},
		{"2x4", 2, 4},
		{"4x8", 4, 8},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := bench.Sweep(bench.SweepOptions{
					Workload: "tpcb",
					Scale:    1,
					Ops:      1000,
					Profile:  benchProfile,
					Ns:       []int{cfg.n},
					Ms:       []int{cfg.m},
					Seed:     1,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					row := res.Rows[0]
					b.ReportMetric(100*row.SpaceOverhead, "areaOverhead%")
					b.ReportMetric(100*row.InPlaceShare, "inPlace%")
					b.ReportMetric(row.Throughput, "tps")
				}
			}
		})
	}
}

// BenchmarkScenarios reproduces the three demonstration scenarios of the
// paper (traditional, IPA on a conventional SSD, IPA on native Flash) and
// reports the transferred bytes and throughput of each.
func BenchmarkScenarios(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.Scenarios(bench.ScenarioOptions{
			Workload: "tpcb",
			Scale:    1,
			Ops:      3000,
			Profile:  benchProfile,
			SchemeN:  2, SchemeM: 4,
			Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(res.Baseline.HostBytesWritten), "baseBytes")
			b.ReportMetric(float64(res.SSD.HostBytesWritten), "ssdBytes")
			b.ReportMetric(float64(res.Native.HostBytesWritten), "nativeBytes")
			b.ReportMetric(res.Baseline.Throughput, "baseTps")
			b.ReportMetric(res.Native.Throughput, "nativeTps")
		}
	}
}

// BenchmarkInterference reproduces the program-interference ablation of
// Section 3: bit errors accumulated by each MLC operation mode under fault
// injection.
func BenchmarkInterference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.Interference(bench.InterferenceOptions{
			Workload: "tpcb",
			Scale:    1,
			Ops:      2000,
			Profile:  benchProfile,
			SchemeN:  2, SchemeM: 4,
			InterferenceProb: 0.3,
			Seed:             1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, row := range res.Rows {
				b.ReportMetric(float64(row.InterferenceBits), row.Mode.String()+"-bits")
			}
		}
	}
}

// BenchmarkEngineUpdateTraditional measures the end-to-end cost (in real
// time) of a small transactional update under the traditional write path.
func BenchmarkEngineUpdateTraditional(b *testing.B) {
	benchmarkEngineUpdate(b, ipa.Traditional, ipa.Scheme{}, ipa.MLCFull)
}

// BenchmarkEngineUpdateIPANative measures the same update under IPA.
func BenchmarkEngineUpdateIPANative(b *testing.B) {
	benchmarkEngineUpdate(b, ipa.IPANativeFlash, ipa.Scheme{N: 2, M: 4}, ipa.PSLC)
}

// BenchmarkConcurrentUpdates measures aggregate transactional update
// throughput as the number of client goroutines grows. Workers update
// disjoint key ranges, so the run exercises the sharded buffer pool
// (different pages, different shard latches) and the group-commit WAL
// (concurrent commits share the simulated log-device flush). The ns/op
// figure is per committed transaction: with 8 goroutines it must be well
// below the single-goroutine baseline.
func BenchmarkConcurrentUpdates(b *testing.B) {
	for _, goroutines := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("goroutines=%d", goroutines), func(b *testing.B) {
			db, err := ipa.Open(ipa.Config{
				PageSize:            4096,
				Blocks:              96,
				PagesPerBlock:       32,
				BufferPoolPages:     64,
				WriteMode:           ipa.IPANativeFlash,
				Scheme:              ipa.Scheme{N: 2, M: 4},
				FlashMode:           ipa.PSLC,
				LogFlushWallLatency: 50 * time.Microsecond,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			table, err := db.CreateTable("t", 100)
			if err != nil {
				b.Fatal(err)
			}
			const keys = 2048
			row := make([]byte, 100)
			for k := int64(0); k < keys; k++ {
				if err := table.Insert(k, row); err != nil {
					b.Fatal(err)
				}
			}
			db.ResetStats()
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			perWorker := b.N / goroutines
			extra := b.N % goroutines
			for w := 0; w < goroutines; w++ {
				ops := perWorker
				if w < extra {
					ops++
				}
				wg.Add(1)
				go func(w, ops int) {
					defer wg.Done()
					base := int64(w) * (keys / int64(goroutines))
					span := keys / int64(goroutines)
					for i := 0; i < ops; i++ {
						key := base + int64(i*17)%span
						tx := db.Begin()
						if err := tx.UpdateAt(table, key, 8, []byte{byte(i), byte(w)}); err != nil {
							b.Error(err)
							_ = tx.Abort()
							return
						}
						if err := tx.Commit(); err != nil {
							b.Error(err)
							return
						}
					}
				}(w, ops)
			}
			wg.Wait()
			b.StopTimer()
			s := db.Stats()
			if b.Elapsed() > 0 {
				b.ReportMetric(float64(s.CommittedTxns)/b.Elapsed().Seconds(), "ops/s")
			}
			b.ReportMetric(s.CommitsPerFlush(), "commits/flush")
		})
	}
}

func benchmarkEngineUpdate(b *testing.B, mode ipa.WriteMode, scheme ipa.Scheme, flash ipa.FlashMode) {
	b.Helper()
	db, err := ipa.Open(ipa.Config{
		PageSize:        4096,
		Blocks:          96,
		PagesPerBlock:   32,
		BufferPoolPages: 32,
		WriteMode:       mode,
		Scheme:          scheme,
		FlashMode:       flash,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	table, err := db.CreateTable("t", 100)
	if err != nil {
		b.Fatal(err)
	}
	const keys = 2000
	row := make([]byte, 100)
	for k := int64(0); k < keys; k++ {
		if err := table.Insert(k, row); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := db.Begin()
		if err := tx.UpdateAt(table, int64(i)%keys, 8, []byte{byte(i), byte(i >> 8)}); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	s := db.Stats()
	b.ReportMetric(float64(s.InPlaceAppends), "inPlaceAppends")
	b.ReportMetric(float64(s.GCErases), "gcErases")
}

// BenchmarkSnapshotReadMix runs one shrunken cell of the read-skew ladder
// (`ipabench -exp concurrent` runs the full one): a 90%-read hot-set mix
// executed once with MVCC snapshot reads and once with 2PL locked reads.
// The tps gap between the two reported metrics is the lock-free-reader
// win. Writes lock in both modes, so the snapshot row still acquires
// locks for its 10% writes — but strictly fewer than the locked row,
// whose reads lock too (the 100%-read zero-lock proof lives in
// TestReadersAcquireNoRecordLocks and TestReadMixScenario).
func BenchmarkSnapshotReadMix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := bench.DefaultReadMixOptions()
		o.Goroutines = 4
		o.ReadPcts = []int{90}
		o.Tuples = 512
		o.Ops = 600
		o.Profile = bench.SmallProfile
		res, err := bench.ReadMix(o)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			snap, lock := res.Rows[0], res.Rows[1]
			if snap.SnapshotReads == 0 {
				b.Fatalf("snapshot row recorded no snapshot reads")
			}
			if snap.LockAcquisitions >= lock.LockAcquisitions {
				b.Fatalf("snapshot row locked %d times, locked row %d — snapshot reads are not lock-free",
					snap.LockAcquisitions, lock.LockAcquisitions)
			}
			b.ReportMetric(snap.OpsPerSec, "snapTps")
			b.ReportMetric(lock.OpsPerSec, "lockTps")
			b.ReportMetric(float64(lock.LockConflicts), "lockConflicts")
			b.ReportMetric(float64(snap.SnapshotReads), "snapReads")
		}
	}
}
