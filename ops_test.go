package ipa_test

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"ipa"
	"ipa/internal/workload"
)

// opsConfig returns a small device whose buffer pool is much smaller than
// the working set, so update churn evicts constantly and garbage
// collection erases blocks — the burn gauge has something to measure.
func opsConfig(mode ipa.WriteMode) ipa.Config {
	cfg := ipa.Config{
		PageSize:        2048,
		Blocks:          24,
		PagesPerBlock:   8,
		BufferPoolPages: 16,
		WriteMode:       mode,
		FlashMode:       ipa.PSLC,
		Analytic:        true,
	}
	if mode != ipa.Traditional {
		cfg.Scheme = ipa.Scheme{N: 4, M: 20}
	}
	return cfg
}

// churn runs ops update transactions against a pre-loaded table.
func churn(t *testing.T, db *ipa.DB, table *ipa.Table, rows int64, ops int) {
	t.Helper()
	r := rand.New(rand.NewSource(7))
	for i := 0; i < ops; i++ {
		tx := db.Begin()
		if err := tx.UpdateAt(table, r.Int63n(rows), 8, []byte{byte(i), byte(i >> 8)}); err != nil {
			t.Fatalf("update: %v", err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("commit: %v", err)
		}
	}
}

// TestBurnGaugeClosedForm pins the burn-rate derivation against a
// closed-form oracle: the run is entirely on the virtual device clock, so
// the expected time-to-death is computable exactly from the raw counters
// of the two ring samples the gauge itself is derived from.
func TestBurnGaugeClosedForm(t *testing.T) {
	db, err := ipa.Open(opsConfig(ipa.Traditional))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()

	const rows = 400
	table, err := db.CreateTable("burn", 128)
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	row := make([]byte, 128)
	for k := int64(0); k < rows; k++ {
		if err := table.Insert(k, row); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	// Warm-up phase so the measured window starts mid-life, then bracket
	// a deterministic churn phase with two explicit samples.
	churn(t, db, table, rows, 2000)
	s1 := db.SampleOps()
	churn(t, db, table, rows, 4000)
	s2 := db.SampleOps()

	if s2.Erases <= s1.Erases {
		t.Fatalf("churn produced no erases in the window (%d -> %d); device too large for the test",
			s1.Erases, s2.Erases)
	}
	if s2.Virtual <= s1.Virtual {
		t.Fatalf("virtual clock did not advance: %v -> %v", s1.Virtual, s2.Virtual)
	}

	o := db.Ops()
	st := db.Stats()
	geo := db.Geometry()

	// Closed-form oracle, from first principles.
	wantBudget := uint64(geo.Blocks) * uint64(st.EnduranceCycles)
	if o.EraseBudget != wantBudget {
		t.Fatalf("EraseBudget = %d, want blocks×endurance = %d", o.EraseBudget, wantBudget)
	}
	if o.ErasesConsumed != st.TotalErasesEver {
		t.Fatalf("ErasesConsumed = %d, want %d", o.ErasesConsumed, st.TotalErasesEver)
	}
	wantBurn := float64(st.TotalErasesEver) / float64(wantBudget)
	if math.Abs(o.LifeBurned-wantBurn) > 1e-12 {
		t.Fatalf("LifeBurned = %g, want %g", o.LifeBurned, wantBurn)
	}

	dv := (s2.Virtual - s1.Virtual).Seconds()
	wantRate := float64(s2.Erases-s1.Erases) / dv
	if math.Abs(o.WindowEraseRatePerSec-wantRate)/wantRate > 1e-9 {
		t.Fatalf("WindowEraseRatePerSec = %g, want %g", o.WindowEraseRatePerSec, wantRate)
	}
	wantTPS := float64(s2.Committed-s1.Committed) / dv
	if math.Abs(o.WindowTPS-wantTPS)/wantTPS > 1e-9 {
		t.Fatalf("WindowTPS = %g, want %g", o.WindowTPS, wantTPS)
	}
	wantTTD := float64(wantBudget-st.TotalErasesEver) / wantRate // virtual seconds
	gotTTD := o.TimeToDeath.Seconds()
	if math.Abs(gotTTD-wantTTD)/wantTTD > 1e-6 {
		t.Fatalf("TimeToDeath = %gs, want %gs", gotTTD, wantTTD)
	}
	if o.Samples < 2 {
		t.Fatalf("Samples = %d, want >= 2", o.Samples)
	}
}

// TestBurnGaugeFallbackWindow checks that Ops degrades to whole-window
// rates when the sampler never ran: the fallback window is the span since
// the last ResetStats on the same virtual clock.
func TestBurnGaugeFallbackWindow(t *testing.T) {
	db, err := ipa.Open(opsConfig(ipa.Traditional))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	table, err := db.CreateTable("burn", 128)
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	row := make([]byte, 128)
	for k := int64(0); k < 400; k++ {
		if err := table.Insert(k, row); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	db.ResetStats()
	churn(t, db, table, 400, 4000)

	o := db.Ops()
	st := db.Stats()
	if o.Samples != 0 {
		t.Fatalf("Samples = %d, want 0 (no sampler)", o.Samples)
	}
	if o.WindowVirtual != st.Elapsed {
		t.Fatalf("fallback WindowVirtual = %v, want Stats.Elapsed %v", o.WindowVirtual, st.Elapsed)
	}
	wantTPS := st.Throughput()
	if math.Abs(o.WindowTPS-wantTPS)/wantTPS > 1e-9 {
		t.Fatalf("fallback WindowTPS = %g, want %g", o.WindowTPS, wantTPS)
	}
	if o.WindowEraseRatePerSec <= 0 {
		t.Fatalf("fallback erase rate = %g, want > 0", o.WindowEraseRatePerSec)
	}
	// ResetStats drops the ring so stale samples can never straddle it.
	db.SampleOps()
	db.ResetStats()
	if got := len(db.OpsWindow()); got != 0 {
		t.Fatalf("ring holds %d samples after ResetStats, want 0", got)
	}
}

// TestBurnIPALowerThanBaseline runs the same secchurn mix under the IPA
// native write path and the traditional baseline: in-place appends must
// consume strictly fewer erases — the live form of the paper's E5
// longevity claim — and the avoided-erase counter must be non-zero.
func TestBurnIPALowerThanBaseline(t *testing.T) {
	run := func(mode ipa.WriteMode) ipa.OpsStats {
		cfg := opsConfig(mode)
		cfg.IndexScheme = cfg.Scheme
		db, err := ipa.Open(cfg)
		if err != nil {
			t.Fatalf("Open(%v): %v", mode, err)
		}
		defer db.Close()
		w := workload.NewSecondaryChurn(workload.SecondaryChurnConfig{Rows: 600, Groups: 64, Seed: 23})
		if err := w.Load(db); err != nil {
			t.Fatalf("load(%v): %v", mode, err)
		}
		db.ResetStats()
		if _, err := workload.Run(db, w, workload.RunOptions{MaxOps: 4000, Seed: 42}); err != nil {
			t.Fatalf("run(%v): %v", mode, err)
		}
		return db.Ops()
	}
	base := run(ipa.Traditional)
	nativ := run(ipa.IPANativeFlash)

	if base.ErasesConsumed == 0 {
		t.Fatalf("baseline consumed no erases; the mix is too light to compare burn")
	}
	if nativ.ErasesConsumed >= base.ErasesConsumed {
		t.Fatalf("IPA burn not lower: native consumed %d erases, baseline %d",
			nativ.ErasesConsumed, base.ErasesConsumed)
	}
	if nativ.LifeBurned >= base.LifeBurned {
		t.Fatalf("IPA LifeBurned %g not lower than baseline %g", nativ.LifeBurned, base.LifeBurned)
	}
	if nativ.ErasesAvoided == 0 {
		t.Fatalf("IPA mode reports zero erases avoided despite in-place appends")
	}
	if base.ErasesAvoided != 0 {
		t.Fatalf("baseline reports %d erases avoided; traditional mode has no in-place appends", base.ErasesAvoided)
	}
}

// TestOpsSamplerBackground checks that Config.StatsInterval spins the
// background sampler and that Close stops it.
func TestOpsSamplerBackground(t *testing.T) {
	cfg := opsConfig(ipa.IPANativeFlash)
	cfg.StatsInterval = 2 * time.Millisecond
	db, err := ipa.Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(db.OpsWindow()) < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("sampler produced %d samples in 5s, want >= 2", len(db.OpsWindow()))
		}
		time.Sleep(time.Millisecond)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	n := len(db.OpsWindow())
	time.Sleep(10 * time.Millisecond)
	if got := len(db.OpsWindow()); got != n {
		t.Fatalf("sampler still running after Close: %d -> %d samples", n, got)
	}
}
