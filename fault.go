package ipa

import "ipa/internal/nand"

// Deterministic power-cut injection, re-exported from the NAND simulator so
// applications and the crash-torture harness can configure it through the
// public API (Config.Faults).
type (
	// FaultPlan is a deterministic power-cut schedule: the K-th matching
	// device operation faults, everything after it fails with ErrPowerLost
	// until the plan is power-cycled (which Reopen does).
	FaultPlan = nand.FaultPlan
	// FaultMode selects what happens at the fault point (crash before the
	// operation, torn mid-operation, or crash right after it).
	FaultMode = nand.FaultMode
	// FaultOp classifies the operations that count as fault points.
	FaultOp = nand.FaultOp
)

// Fault modes.
const (
	CrashBefore = nand.CrashBefore
	CrashTorn   = nand.CrashTorn
	CrashAfter  = nand.CrashAfter
)

// Fault-point operation kinds (bit mask for FaultPlan.SetKinds).
const (
	OpProgram      = nand.OpProgram
	OpDeltaProgram = nand.OpDeltaProgram
	OpErase        = nand.OpErase
	OpLogFlush     = nand.OpLogFlush
	OpAll          = nand.OpAll
	// OpRead classifies page reads for SetDeviceOpHook observers. Reads
	// are never fault points, so OpRead is not part of OpAll.
	OpRead = nand.OpRead
)

// ErrPowerLost is reported by every operation after an injected power cut.
var ErrPowerLost = nand.ErrPowerLost

// NewFaultPlan creates a plan that faults the crashAt-th device operation
// (1-based) with the given mode. crashAt == 0 creates a passive plan that
// only counts operations — run a workload against it once to enumerate the
// fault points, then sweep them one by one with Arm.
func NewFaultPlan(crashAt uint64, mode FaultMode) *FaultPlan {
	return nand.NewFaultPlan(crashAt, mode)
}
