package ipa_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"ipa"
)

// valRow builds a 64-byte tuple carrying an int64 value at offset 0.
func valRow(v int64) []byte {
	b := make([]byte, 64)
	binary.LittleEndian.PutUint64(b, uint64(v))
	return b
}

// mvccFixture builds a small table with a committed row per key in
// [0, rows), each tuple carrying an int64 value at offset 0.
func mvccFixture(t *testing.T, rows int64, val int64) (*ipa.DB, *ipa.Table) {
	t.Helper()
	db, err := ipa.Open(secCfg())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	tbl, err := db.CreateTable("acct", 64)
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	for k := int64(0); k < rows; k++ {
		tx := db.Begin()
		if err := tx.Insert(tbl, k, valRow(val)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("Commit: %v", err)
		}
	}
	return db, tbl
}

func commitUpdate(t *testing.T, db *ipa.DB, tbl *ipa.Table, key, val int64) {
	t.Helper()
	tx := db.Begin()
	if err := tx.UpdateAt(tbl, key, 0, int64le(val)); err != nil {
		t.Fatalf("UpdateAt: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
}

// TestTxRepeatableRead: a transaction's first read fixes its snapshot;
// commits by other transactions stay invisible until it finishes.
func TestTxRepeatableRead(t *testing.T) {
	db, tbl := mvccFixture(t, 1, 100)
	reader := db.Begin()
	first, err := reader.Get(tbl, 0)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	commitUpdate(t, db, tbl, 0, 200)
	again, err := reader.Get(tbl, 0)
	if err != nil {
		t.Fatalf("re-Get: %v", err)
	}
	if !bytes.Equal(first, again) {
		t.Fatalf("repeatable read violated: % x then % x", first[:8], again[:8])
	}
	if err := reader.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	// A fresh read sees the newer commit.
	got, err := tbl.Get(0)
	if err != nil {
		t.Fatalf("Get after commit: %v", err)
	}
	if v := int64(binary.LittleEndian.Uint64(got)); v != 200 {
		t.Fatalf("fresh read = %d, want 200", v)
	}
}

// TestNoDirtyReads: uncommitted and aborted writes are invisible to
// snapshot readers.
func TestNoDirtyReads(t *testing.T) {
	db, tbl := mvccFixture(t, 1, 100)
	writer := db.Begin()
	if err := writer.UpdateAt(tbl, 0, 0, int64le(999)); err != nil {
		t.Fatalf("UpdateAt: %v", err)
	}
	got, err := tbl.Get(0)
	if err != nil {
		t.Fatalf("Get during pending update: %v", err)
	}
	if v := int64(binary.LittleEndian.Uint64(got)); v != 100 {
		t.Fatalf("dirty read: saw %d, want 100", v)
	}
	if err := writer.Abort(); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	got, err = tbl.Get(0)
	if err != nil {
		t.Fatalf("Get after abort: %v", err)
	}
	if v := int64(binary.LittleEndian.Uint64(got)); v != 100 {
		t.Fatalf("aborted write leaked: saw %d, want 100", v)
	}
	if err := db.VerifyIntegrity(); err != nil {
		t.Fatalf("VerifyIntegrity: %v", err)
	}
}

// TestReadersAcquireNoRecordLocks is the acceptance check for lock-free
// readers: every read path — Tx.Get, Table.Get/Exists, ScanRange,
// GetBySecondary, ScanSecondary — runs without a single record-lock
// acquisition, while a writer still takes locks.
func TestReadersAcquireNoRecordLocks(t *testing.T) {
	db, tbl := scanFixture(t)
	db.ResetStats()

	if _, err := tbl.Get(3); err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !tbl.Exists(3) {
		t.Fatalf("Exists(3) = false")
	}
	rtx := db.Begin()
	if _, err := rtx.Get(tbl, 5); err != nil {
		t.Fatalf("Tx.Get: %v", err)
	}
	if err := rtx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if n := countRange(t, tbl, 0, 40); n != 40 {
		t.Fatalf("ScanRange saw %d rows, want 40", n)
	}
	if rows, err := tbl.GetBySecondary("group", 2); err != nil || len(rows) != 10 {
		t.Fatalf("GetBySecondary = %d rows, %v; want 10", len(rows), err)
	}
	if n := countSecondary(t, tbl, 0, 4); n != 40 {
		t.Fatalf("ScanSecondary saw %d rows, want 40", n)
	}

	s := db.Stats()
	if s.LockAcquisitions != 0 {
		t.Fatalf("read-only paths acquired %d record locks, want 0", s.LockAcquisitions)
	}
	if s.SnapshotReads == 0 {
		t.Fatalf("snapshot reads not counted")
	}

	// Writers still lock, and the no-wait policy counts conflicts.
	w1 := db.Begin()
	if _, err := w1.GetForUpdate(tbl, 7); err != nil {
		t.Fatalf("GetForUpdate: %v", err)
	}
	w2 := db.Begin()
	if _, err := w2.GetForUpdate(tbl, 7); !errors.Is(err, ipa.ErrConflict) {
		t.Fatalf("rival GetForUpdate = %v, want ErrConflict", err)
	}
	_ = w2.Abort()
	if err := w1.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	s = db.Stats()
	if s.LockAcquisitions == 0 || s.LockConflicts == 0 {
		t.Fatalf("writer lock counters: acquisitions=%d conflicts=%d, want both > 0",
			s.LockAcquisitions, s.LockConflicts)
	}
}

// TestVersionGCReclaimsHistory pins an old snapshot, piles up superseded
// versions, reads through them, and checks the Stats counters account for
// creation, version-chasing reads and full reclamation.
func TestVersionGCReclaimsHistory(t *testing.T) {
	db, tbl := mvccFixture(t, 1, 100)
	db.ResetStats()

	reader := db.Begin()
	pinned, err := reader.Get(tbl, 0)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	for i := int64(1); i <= 3; i++ {
		commitUpdate(t, db, tbl, 0, 100+i)
	}
	again, err := reader.Get(tbl, 0)
	if err != nil {
		t.Fatalf("pinned re-Get: %v", err)
	}
	if !bytes.Equal(pinned, again) {
		t.Fatalf("pinned snapshot drifted")
	}

	s := db.Stats()
	if s.VersionsCreated != 3 {
		t.Fatalf("VersionsCreated = %d, want 3", s.VersionsCreated)
	}
	if s.VersionChainsLive != 1 {
		t.Fatalf("VersionChainsLive = %d, want 1", s.VersionChainsLive)
	}
	if s.VersionReads == 0 {
		t.Fatalf("pinned read did not chase the version chain")
	}
	if s.ActiveSnapshots != 1 || s.OldestSnapshotAge == 0 {
		t.Fatalf("snapshot gauges: active=%d age=%d, want 1 and > 0",
			s.ActiveSnapshots, s.OldestSnapshotAge)
	}

	// Releasing the snapshot lets GC collapse the whole history.
	if err := reader.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	s = db.Stats()
	if s.VersionsReclaimed != 3 {
		t.Fatalf("VersionsReclaimed = %d after release, want 3", s.VersionsReclaimed)
	}
	if s.VersionChainsLive != 0 {
		t.Fatalf("VersionChainsLive = %d after GC, want 0", s.VersionChainsLive)
	}
	if err := db.VerifyIntegrity(); err != nil {
		t.Fatalf("VerifyIntegrity: %v", err)
	}
}

// TestSnapshotSurvivesCommittedDelete: a pinned snapshot keeps reading a
// row through its retained (zombie) index entry after the delete commits;
// fresh readers see it gone; GC drops the zombie once the snapshot ends.
func TestSnapshotSurvivesCommittedDelete(t *testing.T) {
	db, tbl := mvccFixture(t, 2, 100)
	reader := db.Begin()
	pinned, err := reader.Get(tbl, 0)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}

	del := db.Begin()
	if err := del.Delete(tbl, 0); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := del.Commit(); err != nil {
		t.Fatalf("Commit delete: %v", err)
	}

	if _, err := tbl.Get(0); !errors.Is(err, ipa.ErrKeyNotFound) {
		t.Fatalf("fresh Get after committed delete = %v, want ErrKeyNotFound", err)
	}
	if tbl.Exists(0) {
		t.Fatalf("Exists(0) after committed delete")
	}
	again, err := reader.Get(tbl, 0)
	if err != nil {
		t.Fatalf("pinned Get after committed delete: %v", err)
	}
	if !bytes.Equal(pinned, again) {
		t.Fatalf("pinned snapshot returned different bytes")
	}
	if z := db.Stats().ZombieEntries; z != 1 {
		t.Fatalf("ZombieEntries = %d, want 1 (retained pk entry)", z)
	}
	// The retained entry is justified by its version chain.
	if err := db.VerifyIntegrity(); err != nil {
		t.Fatalf("VerifyIntegrity with zombie: %v", err)
	}

	// The key is reusable: insert-over-zombie succeeds even while the old
	// snapshot is still active.
	ins := db.Begin()
	if err := ins.Insert(tbl, 0, valRow(500)); err != nil {
		t.Fatalf("insert over zombie: %v", err)
	}
	if err := ins.Commit(); err != nil {
		t.Fatalf("Commit insert: %v", err)
	}
	if err := reader.Commit(); err != nil {
		t.Fatalf("Commit reader: %v", err)
	}

	s := db.Stats()
	if s.ZombieEntries != 0 {
		t.Fatalf("ZombieEntries = %d after snapshot release, want 0", s.ZombieEntries)
	}
	got, err := tbl.Get(0)
	if err != nil {
		t.Fatalf("Get after reinsert: %v", err)
	}
	if v := int64(binary.LittleEndian.Uint64(got)); v != 500 {
		t.Fatalf("reinserted value = %d, want 500", v)
	}
	if err := db.VerifyIntegrity(); err != nil {
		t.Fatalf("VerifyIntegrity: %v", err)
	}
}

// TestSecondaryMoveRetainsPairForSnapshots: committing a key move retains
// the old volatile pair (stale-marked) while a snapshot predates it, and
// fresh secondary reads re-extract and skip it.
func TestSecondaryMoveRetainsPairForSnapshots(t *testing.T) {
	db, tbl := scanFixture(t)
	reader := db.Begin()
	if _, err := reader.Get(tbl, 0); err != nil {
		t.Fatalf("Get: %v", err)
	}

	mover := db.Begin()
	if err := mover.UpdateAt(tbl, 15, 8, int64le(100)); err != nil { // group 3 -> 100
		t.Fatalf("UpdateAt: %v", err)
	}
	if err := mover.Commit(); err != nil {
		t.Fatalf("Commit move: %v", err)
	}

	if rows, err := tbl.GetBySecondary("group", 3); err != nil || len(rows) != 9 {
		t.Fatalf("group 3 after move = %d rows, %v; want 9", len(rows), err)
	}
	if rows, err := tbl.GetBySecondary("group", 100); err != nil || len(rows) != 1 {
		t.Fatalf("group 100 after move = %d rows, %v; want 1", len(rows), err)
	}
	if z := db.Stats().ZombieEntries; z != 1 {
		t.Fatalf("ZombieEntries = %d, want 1 (retained secondary pair)", z)
	}
	if err := db.VerifyIntegrity(); err != nil {
		t.Fatalf("VerifyIntegrity with retained pair: %v", err)
	}

	if err := reader.Commit(); err != nil {
		t.Fatalf("Commit reader: %v", err)
	}
	if z := db.Stats().ZombieEntries; z != 0 {
		t.Fatalf("ZombieEntries = %d after release, want 0", z)
	}
	if err := db.VerifyIntegrity(); err != nil {
		t.Fatalf("VerifyIntegrity after GC: %v", err)
	}
}

// TestConcurrentScanConsistentCut drives money transfers against
// concurrent snapshot scans and repeatable-read transactions: every scan
// must observe a consistent cut (all rows, constant total).
func TestConcurrentScanConsistentCut(t *testing.T) {
	const (
		accounts = 8
		initial  = 100
		total    = accounts * initial
	)
	db, tbl := mvccFixture(t, accounts, initial)

	transfer := func(r *rand.Rand) error {
		a := int64(r.Intn(accounts))
		b := int64(r.Intn(accounts))
		if a == b {
			return nil
		}
		if a > b { // lock in key order to reduce no-wait aborts
			a, b = b, a
		}
		tx := db.Begin()
		av, err := tx.GetForUpdate(tbl, a)
		if err != nil {
			_ = tx.Abort()
			return err
		}
		bv, err := tx.GetForUpdate(tbl, b)
		if err != nil {
			_ = tx.Abort()
			return err
		}
		x := int64(binary.LittleEndian.Uint64(av))
		y := int64(binary.LittleEndian.Uint64(bv))
		if err := tx.UpdateAt(tbl, a, 0, int64le(x-1)); err != nil {
			_ = tx.Abort()
			return err
		}
		if err := tx.UpdateAt(tbl, b, 0, int64le(y+1)); err != nil {
			_ = tx.Abort()
			return err
		}
		return tx.Commit()
	}

	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 150; i++ {
				if err := transfer(r); err != nil && !errors.Is(err, ipa.ErrConflict) {
					errc <- err
					return
				}
			}
		}(int64(w + 1))
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				sum, rows := int64(0), 0
				err := tbl.ScanRange(0, accounts, func(_ int64, tuple []byte) bool {
					sum += int64(binary.LittleEndian.Uint64(tuple))
					rows++
					return true
				})
				if err != nil {
					errc <- err
					return
				}
				if rows != accounts || sum != total {
					errc <- fmt.Errorf("scan cut: %d rows sum %d, want %d rows sum %d", rows, sum, accounts, total)
					return
				}
			}
		}()
	}
	// A repeatable-read transaction: per-key reads across its snapshot
	// must add up too, no matter how many transfers commit meanwhile.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			tx := db.Begin()
			sum := int64(0)
			for k := int64(0); k < accounts; k++ {
				v, err := tx.Get(tbl, k)
				if err != nil {
					errc <- err
					return
				}
				sum += int64(binary.LittleEndian.Uint64(v))
			}
			if sum != total {
				errc <- fmt.Errorf("repeatable-read sum %d, want %d", sum, total)
				return
			}
			if err := tx.Commit(); err != nil {
				errc <- err
				return
			}
		}
	}()
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	// Quiesced: history fully reclaimable, state verifiable.
	sum := int64(0)
	if err := tbl.ScanRange(0, accounts, func(_ int64, tuple []byte) bool {
		sum += int64(binary.LittleEndian.Uint64(tuple))
		return true
	}); err != nil {
		t.Fatalf("final scan: %v", err)
	}
	if sum != total {
		t.Fatalf("final sum = %d, want %d", sum, total)
	}
	if err := db.VerifyIntegrity(); err != nil {
		t.Fatalf("VerifyIntegrity: %v", err)
	}
}

// TestReopenRestartsCommitClock: commit timestamps are durable (carried in
// the WAL commit records), so snapshots and MVCC bookkeeping keep working
// across a crash and recovery.
func TestReopenRestartsCommitClock(t *testing.T) {
	db, err := ipa.Open(secCfg())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	tbl, err := db.CreateTable("t", 64)
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	for k := int64(0); k < 10; k++ {
		tx := db.Begin()
		if err := tx.Insert(tbl, k, valRow(k)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("Commit: %v", err)
		}
	}

	db2, err := ipa.Reopen(db.Crash())
	if err != nil {
		t.Fatalf("Reopen: %v", err)
	}
	defer db2.Close()
	if err := db2.VerifyIntegrity(); err != nil {
		t.Fatalf("VerifyIntegrity after Reopen: %v", err)
	}
	tbl2, ok := db2.Table("t")
	if !ok {
		t.Fatalf("table lost across Reopen")
	}

	// MVCC still works on the recovered engine: pinned snapshots survive
	// committed deletes, and integrity holds with and without zombies.
	reader := db2.Begin()
	if _, err := reader.Get(tbl2, 3); err != nil {
		t.Fatalf("Get after Reopen: %v", err)
	}
	del := db2.Begin()
	if err := del.Delete(tbl2, 3); err != nil {
		t.Fatalf("Delete after Reopen: %v", err)
	}
	if err := del.Commit(); err != nil {
		t.Fatalf("Commit after Reopen: %v", err)
	}
	if _, err := reader.Get(tbl2, 3); err != nil {
		t.Fatalf("pinned Get after Reopen+delete: %v", err)
	}
	if err := db2.VerifyIntegrity(); err != nil {
		t.Fatalf("VerifyIntegrity with zombie after Reopen: %v", err)
	}
	if err := reader.Commit(); err != nil {
		t.Fatalf("Commit reader: %v", err)
	}
	if _, err := tbl2.Get(3); !errors.Is(err, ipa.ErrKeyNotFound) {
		t.Fatalf("Get deleted key = %v, want ErrKeyNotFound", err)
	}
	if err := db2.VerifyIntegrity(); err != nil {
		t.Fatalf("final VerifyIntegrity: %v", err)
	}
}
