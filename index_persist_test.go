package ipa_test

import (
	"encoding/binary"
	"errors"
	"testing"

	"ipa"
)

// TestPersistentIndexCrashRecovery drives transactional inserts, deletes
// and reinserts, crashes without flushing, and verifies Reopen recovers
// the primary-key index from its entry pages and the log — including keys
// whose tuples do NOT carry the key in their first bytes, which the old
// heap-scan rebuild could never recover.
func TestPersistentIndexCrashRecovery(t *testing.T) {
	cfg := ipa.Config{
		PageSize:        2048,
		Blocks:          24,
		PagesPerBlock:   16,
		BufferPoolPages: 8,
		WriteMode:       ipa.IPANativeFlash,
		Scheme:          ipa.Scheme{N: 2, M: 4},
		FlashMode:       ipa.PSLC,
	}
	db, err := ipa.Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	tbl, err := db.CreateTable("opaque", 64)
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	// Tuples deliberately do not embed the key: byte 0 is a generation
	// marker, the rest is payload derived from the key.
	row := func(key int64, gen byte) []byte {
		b := make([]byte, 64)
		b[0] = gen
		binary.LittleEndian.PutUint64(b[8:], uint64(key*7919))
		return b
	}
	const keys = 200
	for k := int64(0); k < keys; k++ {
		tx := db.Begin()
		if err := tx.Insert(tbl, k, row(k, 1)); err != nil {
			t.Fatalf("Insert %d: %v", k, err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("Commit: %v", err)
		}
	}
	// Delete every third key; reinsert every ninth with a new generation.
	for k := int64(0); k < keys; k += 3 {
		tx := db.Begin()
		if err := tx.Delete(tbl, k); err != nil {
			t.Fatalf("Delete %d: %v", k, err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("Commit delete: %v", err)
		}
	}
	for k := int64(0); k < keys; k += 9 {
		tx := db.Begin()
		if err := tx.Insert(tbl, k, row(k, 2)); err != nil {
			t.Fatalf("reinsert %d: %v", k, err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("Commit reinsert: %v", err)
		}
	}
	// A loser: uncommitted delete + insert that must both roll back.
	loser := db.Begin()
	if err := loser.Delete(tbl, 1); err != nil {
		t.Fatalf("loser delete: %v", err)
	}
	if err := loser.Insert(tbl, 100000, row(100000, 9)); err != nil {
		t.Fatalf("loser insert: %v", err)
	}

	db2, err := ipa.Reopen(db.Crash())
	if err != nil {
		t.Fatalf("Reopen: %v", err)
	}
	defer db2.Close()
	if err := db2.VerifyIntegrity(); err != nil {
		t.Fatalf("VerifyIntegrity: %v", err)
	}
	tbl2, ok := db2.Table("opaque")
	if !ok {
		t.Fatalf("table missing after reopen")
	}
	want := uint64(0)
	for k := int64(0); k < keys; k++ {
		gen := byte(1)
		if k%3 == 0 {
			if k%9 == 0 {
				gen = 2
			} else {
				gen = 0 // deleted
			}
		}
		got, err := tbl2.Get(k)
		if gen == 0 {
			if !errors.Is(err, ipa.ErrKeyNotFound) {
				t.Fatalf("key %d: want ErrKeyNotFound, got %v / %v", k, got, err)
			}
			continue
		}
		want++
		if err != nil {
			t.Fatalf("key %d: %v", k, err)
		}
		if got[0] != gen {
			t.Fatalf("key %d: generation %d, want %d", k, got[0], gen)
		}
	}
	if _, err := tbl2.Get(100000); !errors.Is(err, ipa.ErrKeyNotFound) {
		t.Fatalf("loser insert resurrected: %v", err)
	}
	if got := tbl2.Count(); got != want {
		t.Fatalf("Count=%d after recovery, want %d", got, want)
	}
	// The recovered database keeps working.
	tx := db2.Begin()
	if err := tx.Insert(tbl2, 5000, row(5000, 3)); err != nil {
		t.Fatalf("post-recovery insert: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("post-recovery commit: %v", err)
	}
	if err := db2.VerifyIntegrity(); err != nil {
		t.Fatalf("VerifyIntegrity after post-recovery work: %v", err)
	}
}

// TestIndexMaintenanceUsesDeltaAppends verifies the tentpole effect: under
// IPA the index entry pages are maintained by in-place delta appends, and
// under the traditional baseline they are not.
func TestIndexMaintenanceUsesDeltaAppends(t *testing.T) {
	run := func(mode ipa.WriteMode, scheme ipa.Scheme, flash ipa.FlashMode) ipa.Stats {
		cfg := ipa.Config{
			PageSize:        4096,
			Blocks:          64,
			PagesPerBlock:   32,
			BufferPoolPages: 16,
			WriteMode:       mode,
			Scheme:          scheme,
			FlashMode:       flash,
		}
		db, err := ipa.Open(cfg)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		defer db.Close()
		tbl, err := db.CreateTable("t", 64)
		if err != nil {
			t.Fatalf("CreateTable: %v", err)
		}
		for k := int64(0); k < 2000; k++ {
			if err := tbl.Insert(k, make([]byte, 64)); err != nil {
				t.Fatalf("Insert: %v", err)
			}
		}
		db.ResetStats()
		// Churn: delete + reinsert keys (each op edits one index entry).
		for i := 0; i < 3000; i++ {
			k := int64(i*7919) % 2000
			tx := db.Begin()
			if err := tx.Delete(tbl, k); err != nil {
				t.Fatalf("Delete: %v", err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatalf("Commit: %v", err)
			}
			tx = db.Begin()
			if err := tx.Insert(tbl, k, make([]byte, 64)); err != nil {
				t.Fatalf("reinsert: %v", err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatalf("Commit: %v", err)
			}
		}
		if err := db.FlushAll(); err != nil {
			t.Fatalf("FlushAll: %v", err)
		}
		return db.Stats()
	}

	ipaStats := run(ipa.IPANativeFlash, ipa.Scheme{N: 2, M: 4}, ipa.PSLC)
	base := run(ipa.Traditional, ipa.Scheme{}, ipa.MLCFull)

	if ipaStats.IndexInPlaceAppends == 0 {
		t.Fatalf("IPA run performed no index delta appends: %+v", ipaStats)
	}
	if base.IndexInPlaceAppends != 0 {
		t.Fatalf("traditional run must not append in place: %+v", base)
	}
	if base.IndexOutOfPlaceWrites <= ipaStats.IndexOutOfPlaceWrites {
		t.Fatalf("IPA should rewrite fewer index pages: base=%d ipa=%d",
			base.IndexOutOfPlaceWrites, ipaStats.IndexOutOfPlaceWrites)
	}
	if ipaStats.IndexPageWrites == 0 || ipaStats.IndexDeltaRecords == 0 {
		t.Fatalf("index counters not populated: %+v", ipaStats)
	}
}

// TestTxDeleteReservesKeyUntilCommit pins the key-level 2PL rule: an
// uncommitted delete keeps the key reserved, so a concurrent insert of
// the same key fails with ErrDuplicateKey instead of racing the delete —
// without the reservation, aborting the deleter would resurrect a tuple
// whose key was re-taken and break the index/heap bijection.
func TestTxDeleteReservesKeyUntilCommit(t *testing.T) {
	db, err := ipa.Open(ipa.Config{
		PageSize: 2048, Blocks: 16, PagesPerBlock: 16, BufferPoolPages: 16,
		WriteMode: ipa.IPANativeFlash, Scheme: ipa.Scheme{N: 2, M: 4}, FlashMode: ipa.PSLC,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	tbl, err := db.CreateTable("t", 32)
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	seed := db.Begin()
	if err := seed.Insert(tbl, 7, make([]byte, 32)); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := seed.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}

	deleter := db.Begin()
	if err := deleter.Delete(tbl, 7); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	// Snapshot readers still see the committed row (the delete is pending,
	// not committed), and the key stays reserved against rival inserts.
	if _, err := tbl.Get(7); err != nil {
		t.Fatalf("Get during pending delete: %v", err)
	}
	if !tbl.Exists(7) {
		t.Fatalf("Exists must report the committed row during a pending delete")
	}
	rival := db.Begin()
	if err := rival.Insert(tbl, 7, make([]byte, 32)); !errors.Is(err, ipa.ErrDuplicateKey) {
		t.Fatalf("insert over a pending delete = %v, want ErrDuplicateKey", err)
	}
	_ = rival.Abort()
	if err := deleter.Abort(); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	if _, err := tbl.Get(7); err != nil {
		t.Fatalf("tuple not restored after abort: %v", err)
	}
	if err := db.VerifyIntegrity(); err != nil {
		t.Fatalf("VerifyIntegrity after abort: %v", err)
	}

	// After a COMMITTED delete the key is free again.
	deleter = db.Begin()
	if err := deleter.Delete(tbl, 7); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := deleter.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	taker := db.Begin()
	if err := taker.Insert(tbl, 7, make([]byte, 32)); err != nil {
		t.Fatalf("insert after committed delete: %v", err)
	}
	if err := taker.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if err := db.VerifyIntegrity(); err != nil {
		t.Fatalf("VerifyIntegrity: %v", err)
	}
}

// TestTxDeleteRollback verifies that aborting a transactional delete
// restores both the tuple and its index entry.
func TestTxDeleteRollback(t *testing.T) {
	db, err := ipa.Open(ipa.Config{
		PageSize: 2048, Blocks: 16, PagesPerBlock: 16, BufferPoolPages: 16,
		WriteMode: ipa.IPANativeFlash, Scheme: ipa.Scheme{N: 2, M: 4}, FlashMode: ipa.PSLC,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	tbl, err := db.CreateTable("t", 32)
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	row := make([]byte, 32)
	row[9] = 0x5A
	tx := db.Begin()
	if err := tx.Insert(tbl, 7, row); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}

	tx = db.Begin()
	if err := tx.Delete(tbl, 7); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	// A snapshot read still sees the committed row while the delete is
	// uncommitted.
	if _, err := tbl.Get(7); err != nil {
		t.Fatalf("Get mid-delete: %v", err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	got, err := tbl.Get(7)
	if err != nil {
		t.Fatalf("Get after rollback: %v", err)
	}
	if got[9] != 0x5A {
		t.Fatalf("restored tuple corrupted: % x", got)
	}
	if got := tbl.Count(); got != 1 {
		t.Fatalf("Count=%d after rollback, want 1", got)
	}
	if err := db.VerifyIntegrity(); err != nil {
		t.Fatalf("VerifyIntegrity: %v", err)
	}
}
