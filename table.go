package ipa

import (
	"errors"
	"fmt"
	"sync"

	"ipa/internal/btree"
	"ipa/internal/heap"
	"ipa/internal/index"
	"ipa/internal/page"
)

// pageMetaSize is the Δmetadata length (page header + footer).
const pageMetaSize = page.MetaSize

// pageFooterSize is the page footer length; the delta-record area sits
// directly in front of the footer.
const pageFooterSize = page.FooterSize

// ErrKeyNotFound is returned when a primary key does not exist.
var ErrKeyNotFound = errors.New("ipa: key not found")

// ErrDuplicateKey is returned when inserting an existing primary key.
var ErrDuplicateKey = errors.New("ipa: duplicate key")

// Table is a collection of fixed-size tuples with an int64 primary key.
//
// The primary-key index is persistent and IPA-native: every key owns one
// 16-byte entry in the table's index file — entry pages that live in the
// buffer pool, belong to the index's own NoFTL region and reach Flash as
// N×M delta appends like any other page. The sorted B-tree (pk) is the
// volatile search structure over those entries; it is rebuilt from the
// entry pages and the write-ahead log on Reopen, never by scanning heaps.
// Non-unique secondary indexes (CreateSecondaryIndex) follow the same
// architecture with (key, RID) entries; see SecondaryIndex.
//
// Tables are safe for concurrent use: pk and the index file are guarded by
// a per-table read/write mutex, while tuple access synchronises at page
// granularity inside the sharded buffer pool (readers take shared frame
// latches, writers exclusive ones), so operations on different pages —
// and concurrent reads of the same page — proceed in parallel.
type Table struct {
	db        *DB
	name      string
	id        uint32
	idxID     uint32 // object identifier of the primary-key index
	tupleSize int

	heap *heap.File

	mu  sync.RWMutex
	pk  *btree.Tree
	idx *index.File
	// secondaries are the table's secondary indexes in creation order;
	// their volatile directories share t.mu with the pk B-tree.
	secondaries []*SecondaryIndex
}

func newTable(db *DB, name string, id, idxID uint32, tupleSize int) *Table {
	return &Table{
		db:        db,
		name:      name,
		id:        id,
		idxID:     idxID,
		tupleSize: tupleSize,
		heap:      heap.New(db.store, db.pool, id, tupleSize),
		pk:        btree.New(),
		idx:       index.New(db.store, db.pool, idxID),
	}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// ID returns the table's object identifier.
func (t *Table) ID() uint32 { return t.id }

// IndexID returns the object identifier of the table's primary-key index.
func (t *Table) IndexID() uint32 { return t.idxID }

// IndexPages returns the number of persistent index entry pages.
func (t *Table) IndexPages() int { return t.idx.Pages() }

// TupleSize returns the fixed tuple size in bytes.
func (t *Table) TupleSize() int { return t.tupleSize }

// Count returns the number of live tuples.
func (t *Table) Count() uint64 { return t.heap.Count() }

// Pages returns the number of heap pages of the table.
func (t *Table) Pages() int { return len(t.heap.PageIDs()) }

// Insert stores a tuple under the given primary key without transactional
// overhead (used by benchmark load phases). The index entries — primary
// key and every secondary — are written alongside the tuple; none are
// covered by the write-ahead log, so crash-recoverable data must go
// through Tx.Insert instead.
func (t *Table) Insert(key int64, tuple []byte) error {
	if err := t.db.acquire(); err != nil {
		return err
	}
	defer t.db.release()
	t.mu.Lock()
	defer t.mu.Unlock()
	// A pk entry whose latest committed state is a delete (a zombie kept
	// for older snapshots) does not block the key; the insert overwrites
	// the entry in place. Older snapshots lose the key's old mapping — the
	// documented delete-then-reinsert anomaly (docs/DESIGN_MVCC.md).
	if v, ok := t.pk.Get(key); ok && !t.db.txns.Versions().CommittedDeleted(v) {
		return fmt.Errorf("%w: %d", ErrDuplicateKey, key)
	}
	rid, err := t.heap.Insert(tuple)
	if err != nil {
		return err
	}
	if err := t.indexSetLocked(key, rid.Pack()); err != nil {
		return err
	}
	for _, s := range t.secondaries {
		if err := s.addLocked(s.extract(tuple), rid.Pack()); err != nil {
			return err
		}
	}
	return nil
}

// indexSetLocked maps key to the packed RID in both the volatile B-tree
// and the persistent index file. Caller holds t.mu.
func (t *Table) indexSetLocked(key int64, value uint64) error {
	if err := t.idx.Set(key, value); err != nil {
		return err
	}
	t.pk.Insert(key, value)
	return nil
}

// indexClearLocked removes key from both index structures. Caller holds
// t.mu. Clearing an absent key is a no-op.
func (t *Table) indexClearLocked(key int64) error {
	if err := t.idx.Delete(key); err != nil {
		return err
	}
	t.pk.Delete(key)
	return nil
}

// rid returns the RID of a primary key.
func (t *Table) rid(key int64) (heap.RID, error) {
	t.mu.RLock()
	v, ok := t.pk.Get(key)
	t.mu.RUnlock()
	if !ok {
		return heap.RID{}, fmt.Errorf("%w: %s key %d", ErrKeyNotFound, t.name, key)
	}
	return heap.Unpack(v), nil
}

// Get returns a copy of the tuple stored under key as of a fresh
// statement snapshot: the latest committed version is returned, a
// concurrent writer's uncommitted bytes are never visible, and no record
// lock is taken.
func (t *Table) Get(key int64) ([]byte, error) {
	if err := t.db.acquire(); err != nil {
		return nil, err
	}
	defer t.db.release()
	var tuple []byte
	err := t.db.snapshotted(func(snap uint64) error {
		var gerr error
		tuple, gerr = t.getVisible(key, snap, 0)
		return gerr
	})
	return tuple, err
}

// Exists reports whether key is present in its latest committed state:
// keys whose delete has not committed yet still read as present, pending
// (uncommitted) inserts read as absent — matching Get.
func (t *Table) Exists(key int64) bool {
	t.mu.RLock()
	v, ok := t.pk.Get(key)
	t.mu.RUnlock()
	if !ok {
		return false
	}
	return t.db.txns.Versions().CommittedLive(v)
}

// UpdateAt overwrites len(data) bytes of the tuple stored under key,
// starting at the tuple-relative offset, without transactional overhead.
// Updates that change a tuple's extracted secondary keys ripple into the
// affected secondary indexes (an entry move per changed key); on tables
// with secondary indexes the whole read-compare-write runs under the
// table mutex, so concurrent UpdateAt calls on the same key cannot leave
// a stale entry behind.
func (t *Table) UpdateAt(key int64, offset int, data []byte) error {
	if err := t.db.acquire(); err != nil {
		return err
	}
	defer t.db.release()
	rid, err := t.rid(key)
	if err != nil {
		return err
	}
	if len(t.secondarySnapshot()) == 0 {
		return t.heap.UpdateAt(rid, offset, data)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	old, err := t.heap.Get(rid)
	if err != nil {
		return err
	}
	moves := secondaryMoves(t.secondaries, old, offset, data)
	if err := t.heap.UpdateAt(rid, offset, data); err != nil {
		return err
	}
	return applySecondaryMovesLocked(moves, rid.Pack())
}

// secondaryMove is one pending secondary-index entry relocation caused by
// an update that changed the tuple's extracted key.
type secondaryMove struct {
	sec    *SecondaryIndex
	oldKey int64
	newKey int64
}

// secondaryMoves computes which secondary keys an update of old (patching
// data at offset) changes.
func secondaryMoves(secs []*SecondaryIndex, old []byte, offset int, data []byte) []secondaryMove {
	if offset < 0 || offset+len(data) > len(old) {
		return nil // the heap update will reject the range
	}
	var moves []secondaryMove
	var updated []byte
	for _, s := range secs {
		before := s.extract(old)
		if updated == nil {
			updated = append([]byte(nil), old...)
			copy(updated[offset:], data)
		}
		if after := s.extract(updated); after != before {
			moves = append(moves, secondaryMove{sec: s, oldKey: before, newKey: after})
		}
	}
	return moves
}

// applySecondaryMovesLocked relocates the secondary entries of the tuple
// with the given packed RID (non-transactional path: both index halves
// move immediately). Caller holds the table mutex.
func applySecondaryMovesLocked(moves []secondaryMove, packed uint64) error {
	for _, mv := range moves {
		if err := mv.sec.removeLocked(mv.oldKey, packed); err != nil {
			return err
		}
		if err := mv.sec.addLocked(mv.newKey, packed); err != nil {
			return err
		}
	}
	return nil
}

// Delete removes the tuple stored under key (non-transactional). Like
// Insert, the index entries — primary key and every secondary — are
// removed alongside the tuple without logging.
func (t *Table) Delete(key int64) error {
	if err := t.db.acquire(); err != nil {
		return err
	}
	defer t.db.release()
	t.mu.Lock()
	defer t.mu.Unlock()
	v, ok := t.pk.Get(key)
	if !ok {
		return fmt.Errorf("%w: %s key %d", ErrKeyNotFound, t.name, key)
	}
	var old []byte
	if len(t.secondaries) > 0 {
		var err error
		if old, err = t.heap.Get(heap.Unpack(v)); err != nil {
			return err
		}
	}
	if err := t.heap.Delete(heap.Unpack(v)); err != nil {
		return err
	}
	if err := t.indexClearLocked(key); err != nil {
		return err
	}
	for _, s := range t.secondaries {
		if err := s.removeLocked(s.extract(old), v); err != nil {
			return err
		}
	}
	return nil
}

// Scan calls fn for every tuple in primary-key order until fn returns
// false. The whole scan reads at one statement snapshot — a consistent
// cut: rows committed before the snapshot are all delivered in their
// snapshot-time state, concurrent writers are never half-visible. The
// close gate is taken per row — never across fn — so the callback may
// freely call other table or transaction methods.
func (t *Table) Scan(fn func(key int64, tuple []byte) bool) error {
	if err := t.db.checkOpen(); err != nil {
		return err
	}
	return t.db.snapshotted(func(snap uint64) error {
		t.mu.RLock()
		pairs := make([]scanPair, 0, t.pk.Len())
		t.pk.Ascend(func(k int64, v uint64) bool {
			pairs = append(pairs, scanPair{key: k, rid: heap.Unpack(v)})
			return true
		})
		t.mu.RUnlock()
		return t.scanPairs(pairs, snap, nil, fn)
	})
}

// ScanRange calls fn for every key in [from, to) until fn returns false.
// Like Scan, the range is read at one statement snapshot and the close
// gate is never held across fn.
func (t *Table) ScanRange(from, to int64, fn func(key int64, tuple []byte) bool) error {
	if err := t.db.checkOpen(); err != nil {
		return err
	}
	return t.db.snapshotted(func(snap uint64) error {
		t.mu.RLock()
		var pairs []scanPair
		t.pk.AscendRange(from, to, func(k int64, v uint64) bool {
			pairs = append(pairs, scanPair{key: k, rid: heap.Unpack(v)})
			return true
		})
		t.mu.RUnlock()
		return t.scanPairs(pairs, snap, nil, fn)
	})
}

// scanPair is one index entry captured by a scan's directory snapshot.
type scanPair struct {
	key int64
	rid heap.RID
}

// scanPairs resolves each captured entry at the scan's snapshot (under the
// close gate) and hands the visible rows to fn with no lock held, so fn
// may call back into the table. Entries with no version visible at the
// snapshot — created later, deleted earlier, or non-transactional residue
// — are skipped. filter, when set, re-extracts the secondary key from the
// resolved bytes and skips rows that no longer (or did not yet) belong
// under the captured key, which keeps secondary scans snapshot-consistent
// across update moves in both directions.
func (t *Table) scanPairs(pairs []scanPair, snap uint64, filter ExtractFunc, fn func(key int64, tuple []byte) bool) error {
	for _, p := range pairs {
		if err := t.db.acquire(); err != nil {
			return err
		}
		tuple, ok, err := t.readVersion(p.rid, snap, 0)
		t.db.release()
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		if filter != nil && filter(tuple) != p.key {
			continue
		}
		if !fn(p.key, tuple) {
			return nil
		}
	}
	return nil
}
