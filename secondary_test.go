package ipa_test

import (
	"encoding/binary"
	"errors"
	"sync"
	"testing"

	"ipa"
)

// secCfg is the small-device configuration of the secondary-index tests:
// an 8-page pool forces entry pages onto Flash continuously.
func secCfg() ipa.Config {
	return ipa.Config{
		PageSize:        2048,
		Blocks:          24,
		PagesPerBlock:   16,
		BufferPoolPages: 8,
		WriteMode:       ipa.IPANativeFlash,
		Scheme:          ipa.Scheme{N: 2, M: 4},
		FlashMode:       ipa.PSLC,
	}
}

// secRow builds a 64-byte tuple with the group field (the secondary key)
// at offset 8 and a generation marker at offset 0.
func secRow(group int64, gen byte) []byte {
	b := make([]byte, 64)
	b[0] = gen
	binary.LittleEndian.PutUint64(b[8:], uint64(group))
	return b
}

func TestSecondaryIndexBasics(t *testing.T) {
	db, err := ipa.Open(secCfg())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	tbl, err := db.CreateTable("events", 64)
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	if _, err := tbl.CreateSecondaryIndex("group", ipa.Int64Field(8)); err != nil {
		t.Fatalf("CreateSecondaryIndex: %v", err)
	}
	if _, err := tbl.CreateSecondaryIndex("group", ipa.Int64Field(8)); err == nil {
		t.Fatalf("duplicate index name accepted")
	}
	// 60 rows in 6 groups of 10.
	for k := int64(0); k < 60; k++ {
		tx := db.Begin()
		if err := tx.Insert(tbl, k, secRow(k%6, 1)); err != nil {
			t.Fatalf("Insert %d: %v", k, err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("Commit: %v", err)
		}
	}
	rows, err := tbl.GetBySecondary("group", 3)
	if err != nil {
		t.Fatalf("GetBySecondary: %v", err)
	}
	if len(rows) != 10 {
		t.Fatalf("group 3: %d rows, want 10", len(rows))
	}
	if _, err := tbl.GetBySecondary("nope", 3); !errors.Is(err, ipa.ErrIndexNotFound) {
		t.Fatalf("unknown index: %v", err)
	}
	// Range scan over groups [2, 5): 30 rows, keys ascending.
	var scanned int
	last := int64(-1)
	err = tbl.ScanSecondary("group", 2, 5, func(key int64, tuple []byte) bool {
		if key < last {
			t.Fatalf("scan out of order: %d after %d", key, last)
		}
		last = key
		scanned++
		return true
	})
	if err != nil {
		t.Fatalf("ScanSecondary: %v", err)
	}
	if scanned != 30 {
		t.Fatalf("scanned %d rows in [2,5), want 30", scanned)
	}
	// An update moving a row between groups.
	tx := db.Begin()
	if err := tx.UpdateAt(tbl, 9, 8, int64le(100)); err != nil {
		t.Fatalf("UpdateAt: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit update: %v", err)
	}
	if rows, _ = tbl.GetBySecondary("group", 3); len(rows) != 9 {
		t.Fatalf("group 3 after move: %d rows, want 9", len(rows))
	}
	if rows, _ = tbl.GetBySecondary("group", 100); len(rows) != 1 {
		t.Fatalf("group 100 after move: %d rows, want 1", len(rows))
	}
	// A transactional delete stays invisible to snapshot readers until it
	// commits; only then does the entry disappear.
	tx = db.Begin()
	if err := tx.Delete(tbl, 15); err != nil { // group 3
		t.Fatalf("Delete: %v", err)
	}
	if rows, _ = tbl.GetBySecondary("group", 3); len(rows) != 9 {
		t.Fatalf("group 3 during delete txn: %d rows, want 9", len(rows))
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit delete: %v", err)
	}
	if rows, _ = tbl.GetBySecondary("group", 3); len(rows) != 8 {
		t.Fatalf("group 3 after committed delete: %d rows, want 8", len(rows))
	}
	if err := db.VerifyIntegrity(); err != nil {
		t.Fatalf("VerifyIntegrity: %v", err)
	}
	s, ok := tbl.SecondaryIndex("group")
	if !ok || s.Len() != 59 {
		t.Fatalf("index entries = %d (ok=%v), want 59", s.Len(), ok)
	}
}

func TestSecondaryIndexRollback(t *testing.T) {
	db, err := ipa.Open(secCfg())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	tbl, err := db.CreateTable("events", 64)
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	if _, err := tbl.CreateSecondaryIndex("group", ipa.Int64Field(8)); err != nil {
		t.Fatalf("CreateSecondaryIndex: %v", err)
	}
	for k := int64(0); k < 20; k++ {
		tx := db.Begin()
		if err := tx.Insert(tbl, k, secRow(k%2, 1)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("Commit: %v", err)
		}
	}
	// Abort an insert, a delete and a key-moving update; none may stick.
	tx := db.Begin()
	if err := tx.Insert(tbl, 50, secRow(7, 1)); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := tx.Delete(tbl, 2); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := tx.UpdateAt(tbl, 5, 8, int64le(9)); err != nil {
		t.Fatalf("UpdateAt: %v", err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	if rows, _ := tbl.GetBySecondary("group", 7); len(rows) != 0 {
		t.Fatalf("aborted insert visible under group 7")
	}
	if rows, _ := tbl.GetBySecondary("group", 9); len(rows) != 0 {
		t.Fatalf("aborted update visible under group 9")
	}
	if rows, _ := tbl.GetBySecondary("group", 0); len(rows) != 10 {
		t.Fatalf("group 0 after rollback: %d rows, want 10", len(rows))
	}
	if err := db.VerifyIntegrity(); err != nil {
		t.Fatalf("VerifyIntegrity after rollback: %v", err)
	}
}

// TestSecondaryIndexCrashRecovery mirrors the primary-key crash test:
// transactional churn across all three maintenance paths, a crash without
// flushing, and a reopened database whose secondary index must match the
// committed history exactly — recovered from entry pages plus the log,
// never from a heap scan.
func TestSecondaryIndexCrashRecovery(t *testing.T) {
	db, err := ipa.Open(secCfg())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	tbl, err := db.CreateTable("events", 64)
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	if _, err := tbl.CreateSecondaryIndex("group", ipa.Int64Field(8)); err != nil {
		t.Fatalf("CreateSecondaryIndex: %v", err)
	}
	const keys = 200
	group := make(map[int64]int64) // committed key -> group
	for k := int64(0); k < keys; k++ {
		tx := db.Begin()
		if err := tx.Insert(tbl, k, secRow(k%8, 1)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("Commit: %v", err)
		}
		group[k] = k % 8
	}
	// Delete every third key, move every fifth survivor to group 50+k%3.
	for k := int64(0); k < keys; k += 3 {
		tx := db.Begin()
		if err := tx.Delete(tbl, k); err != nil {
			t.Fatalf("Delete: %v", err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("Commit: %v", err)
		}
		delete(group, k)
	}
	for k := int64(1); k < keys; k += 5 {
		if _, live := group[k]; !live {
			continue
		}
		g := 50 + k%3
		tx := db.Begin()
		if err := tx.UpdateAt(tbl, k, 8, int64le(g)); err != nil {
			t.Fatalf("UpdateAt: %v", err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("Commit: %v", err)
		}
		group[k] = g
	}
	// Losers across all three paths: must be invisible after recovery.
	loser := db.Begin()
	if err := loser.Insert(tbl, 10000, secRow(99, 9)); err != nil {
		t.Fatalf("loser insert: %v", err)
	}
	if err := loser.Delete(tbl, 1); err != nil {
		t.Fatalf("loser delete: %v", err)
	}
	if err := loser.UpdateAt(tbl, 2, 8, int64le(98)); err != nil {
		t.Fatalf("loser update: %v", err)
	}

	db2, err := ipa.Reopen(db.Crash())
	if err != nil {
		t.Fatalf("Reopen: %v", err)
	}
	defer db2.Close()
	if err := db2.VerifyIntegrity(); err != nil {
		t.Fatalf("VerifyIntegrity: %v", err)
	}
	tbl2, ok := db2.Table("events")
	if !ok {
		t.Fatalf("table missing after reopen")
	}
	if names := tbl2.SecondaryIndexes(); len(names) != 1 || names[0] != "group" {
		t.Fatalf("secondary indexes after reopen: %v", names)
	}
	// Committed groups must resolve exactly; loser groups must be empty.
	wantPerGroup := make(map[int64]int)
	for _, g := range group {
		wantPerGroup[g]++
	}
	for g, want := range wantPerGroup {
		rows, err := tbl2.GetBySecondary("group", g)
		if err != nil {
			t.Fatalf("GetBySecondary %d: %v", g, err)
		}
		if len(rows) != want {
			t.Fatalf("group %d: %d rows after recovery, want %d", g, len(rows), want)
		}
	}
	for _, g := range []int64{99, 98} {
		if rows, _ := tbl2.GetBySecondary("group", g); len(rows) != 0 {
			t.Fatalf("loser residue under group %d: %d rows", g, len(rows))
		}
	}
	s, _ := tbl2.SecondaryIndex("group")
	if s.Len() != len(group) {
		t.Fatalf("recovered index carries %d entries, want %d", s.Len(), len(group))
	}
	// The recovered database keeps working through the secondary path.
	tx := db2.Begin()
	if err := tx.Insert(tbl2, 10001, secRow(4, 3)); err != nil {
		t.Fatalf("post-recovery insert: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("post-recovery commit: %v", err)
	}
	if err := db2.VerifyIntegrity(); err != nil {
		t.Fatalf("VerifyIntegrity after post-recovery work: %v", err)
	}
}

// TestSecondaryIndexBackfill covers index creation over existing rows and
// the persistence contract of the backfill (survives via FlushAll).
func TestSecondaryIndexBackfill(t *testing.T) {
	db, err := ipa.Open(secCfg())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	tbl, err := db.CreateTable("events", 64)
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	for k := int64(0); k < 40; k++ {
		if err := tbl.Insert(k, secRow(k%4, 1)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	s, err := tbl.CreateSecondaryIndex("group", ipa.Int64Field(8))
	if err != nil {
		t.Fatalf("CreateSecondaryIndex: %v", err)
	}
	if s.Len() != 40 || s.Keys() != 4 {
		t.Fatalf("backfill: %d entries / %d keys, want 40 / 4", s.Len(), s.Keys())
	}
	rows, err := tbl.GetBySecondary("group", 2)
	if err != nil || len(rows) != 10 {
		t.Fatalf("group 2 after backfill: %d rows (%v), want 10", len(rows), err)
	}
	if err := db.VerifyIntegrity(); err != nil {
		t.Fatalf("VerifyIntegrity: %v", err)
	}
}

// TestSecondaryConcurrentUpdateAt hammers non-transactional UpdateAt on
// the same keys from several goroutines: the read-compare-write of the
// secondary-entry move runs under the table mutex, so no stale entry may
// survive.
func TestSecondaryConcurrentUpdateAt(t *testing.T) {
	db, err := ipa.Open(secCfg())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	tbl, err := db.CreateTable("events", 64)
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	if _, err := tbl.CreateSecondaryIndex("group", ipa.Int64Field(8)); err != nil {
		t.Fatalf("CreateSecondaryIndex: %v", err)
	}
	for k := int64(0); k < 8; k++ {
		if err := tbl.Insert(k, secRow(0, 1)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := int64(i % 8)
				if err := tbl.UpdateAt(k, 8, int64le(int64(g*1000+i))); err != nil {
					t.Errorf("UpdateAt: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := db.VerifyIntegrity(); err != nil {
		t.Fatalf("VerifyIntegrity after concurrent updates: %v", err)
	}
	s, _ := tbl.SecondaryIndex("group")
	if s.Len() != 8 {
		t.Fatalf("index carries %d entries, want 8", s.Len())
	}
}

// int64le is the little-endian encoding of v.
func int64le(v int64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(v))
	return b
}
